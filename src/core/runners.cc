#include "core/runners.hh"

#include <cmath>
#include <memory>

#include "core/watchdog.hh"
#include "replay/scheduled_sink.hh"
#include "stats/json_report.hh"
#include "trace/address_space.hh"
#include "trace/sinks.hh"

namespace wsg::core
{

// Every study is defined once, as a job body; the serial run*Study
// entry points execute the same body inline with an empty context.
// Job bodies capture their configuration by value so the StudyJob can
// outlive the caller's locals (benches build job vectors up front).

namespace
{

sim::SimConfig
simConfigFor(std::uint32_t num_procs, std::uint32_t line_bytes,
             const StudyConfig &study)
{
    sim::SimConfig config;
    config.numProcs = num_procs;
    config.lineBytes = line_bytes;
    config.sampling = study.sampling;
    config.profiler = study.profiler;
    config.protocol = study.protocol;
    config.hierarchy = study.hierarchy;
    return config;
}

/**
 * The per-study sink chain: the Multiprocessor innermost, optionally
 * teed into a RaceDetector (StudyConfig::analyzeRaces — the detector
 * sees the exact reference and sync-event stream the caches see,
 * warm-up included, since a warm-up race is still a bug), fronted by a
 * ScheduledReplaySink applying StudyConfig::scheduler (upstream of the
 * tee, so the race check observes the *scheduled* stream — the one the
 * caches see), optionally wrapped in a WatchdogSink
 * (StudyConfig::timeoutSeconds) so a runaway study fails with
 * StudyTimeoutError instead of hanging its worker,
 * and always fronted by a BatchingSink so the whole chain below it is
 * traversed once per block of references instead of once per
 * reference. Batching is invisible to the results: the buffer is
 * drained before every point where simulator state is read or its mode
 * toggled — sync events (inside BatchingSink), measurement switches
 * (setMeasuring), phase boundaries (checkDeadline) and study
 * completion (finish).
 */
class SinkChain
{
  public:
    SinkChain(sim::Multiprocessor &mp,
              const trace::SharedAddressSpace &space,
              const StudyConfig &study)
        : watchdog_(study.timeoutSeconds), mp_(mp), sink_(&mp)
    {
        if (study.analyzeRaces) {
            analysis::RaceConfig config;
            config.numProcs = mp.config().numProcs;
            detector_ =
                std::make_unique<analysis::RaceDetector>(config);
            detector_->attachAddressSpace(&space);
            tee_ = std::make_unique<trace::TeeSink>(mp, *detector_);
            sink_ = tee_.get();
        }
        // Always present: the static default takes the identity fast
        // path, so an unscheduled study's bytes and speed are
        // unchanged while the scheduler axis is exercised everywhere.
        scheduler_ = std::make_unique<replay::ScheduledReplaySink>(
            *sink_, study.scheduler, mp.config().numProcs);
        sink_ = scheduler_.get();
        if (watchdog_.enabled()) {
            guard_ =
                std::make_unique<WatchdogSink>(*sink_, watchdog_);
            sink_ = guard_.get();
        }
        batcher_ = std::make_unique<trace::BatchingSink>(*sink_);
        sink_ = batcher_.get();
    }

    /** Sink to hand the application. */
    trace::MemorySink *sink() const { return sink_; }

    /** Warm-up switch: drains the buffer first so every buffered
     *  reference is counted under the mode it was issued in. */
    void
    setMeasuring(bool measuring)
    {
        batcher_->flush();
        mp_.setMeasuring(measuring);
    }

    /** Explicit deadline check between study phases; drains the buffer
     *  so the downstream simulator state is complete. */
    void
    checkDeadline()
    {
        batcher_->flush();
        watchdog_.check();
    }

    /** Final deadline check + stamp the race outcome into the result. */
    StudyResult
    finish(StudyResult result)
    {
        batcher_->flush();
        watchdog_.check();
        if (detector_ != nullptr)
            result.races = detector_->result();
        result.scheduler = scheduler_->spec();
        result.schedulerIntervals = scheduler_->intervals();
        result.schedulerMigrations = scheduler_->migrations();
        return result;
    }

  private:
    StudyWatchdog watchdog_;
    sim::Multiprocessor &mp_;
    std::unique_ptr<analysis::RaceDetector> detector_;
    std::unique_ptr<trace::TeeSink> tee_;
    std::unique_ptr<replay::ScheduledReplaySink> scheduler_;
    std::unique_ptr<WatchdogSink> guard_;
    std::unique_ptr<trace::BatchingSink> batcher_;
    trace::MemorySink *sink_;
};

// ---------------------------------------------------------------------
// Canonical config serialization (wsg-study-config-v1).
//
// One key=value per line, fixed key order, app parameters first, then
// the shared study parameters. Every field that can change the study's
// report bytes is present; StudyConfig::timeoutSeconds is deliberately
// absent (it bounds wall-clock, never the result), so a request with a
// different watchdog budget still hits the same cache entry. Doubles
// are rendered with the JSON writer's shortest round-trip form so
// equal values always canonicalize to equal bytes.
// ---------------------------------------------------------------------

std::string
canonicalDouble(double v)
{
    return stats::JsonWriter::formatDouble(v);
}

std::string
canonicalHeader(const char *app_kind)
{
    return std::string("wsg-study-config-v1\napp=") + app_kind + "\n";
}

void
appendStudyConfig(std::string &out, const StudyConfig &study,
                  std::uint32_t line_bytes)
{
    out += "line_bytes=" + std::to_string(line_bytes) + "\n";
    out += "min_cache_bytes=" + std::to_string(study.minCacheBytes) +
           "\n";
    out += "max_cache_bytes=" + std::to_string(study.maxCacheBytes) +
           "\n";
    out += "points_per_octave=" +
           std::to_string(study.pointsPerOctave) + "\n";
    out += "include_cold=" +
           std::to_string(study.includeCold ? 1 : 0) + "\n";
    out += "knee_min_step_drop=" +
           canonicalDouble(study.knee.minStepDrop) + "\n";
    out += "knee_min_knee_factor=" +
           canonicalDouble(study.knee.minKneeFactor) + "\n";
    out += "knee_rate_floor=" + canonicalDouble(study.knee.rateFloor) +
           "\n";
    out += "analyze_races=" +
           std::to_string(study.analyzeRaces ? 1 : 0) + "\n";
    out += std::string("profiler=") +
           memsys::profilerKindName(study.profiler) + "\n";
    out += std::string("sampling_mode=") +
           approx::samplingModeName(study.sampling.mode) + "\n";
    if (study.sampling.mode == approx::SamplingMode::FixedRate)
        out += "sampling_rate=" + canonicalDouble(study.sampling.rate) +
               "\n";
    if (study.sampling.mode == approx::SamplingMode::FixedSize)
        out += "sampling_max_lines=" +
               std::to_string(study.sampling.maxLines) + "\n";
    if (study.sampling.enabled())
        out += "sampling_hash_salt=" +
               std::to_string(study.sampling.hashSalt) + "\n";
    // The machine axes are appended only when off their defaults so
    // every pre-existing study config — and therefore every content
    // hash, cache entry and campaign resume key — keeps its bytes.
    if (study.protocol != sim::CoherenceProtocol::WriteInvalidate)
        out += std::string("protocol=") +
               sim::coherenceProtocolName(study.protocol) + "\n";
    if (study.hierarchy.twoLevel())
        out += "hierarchy=" + memsys::hierarchyLabel(study.hierarchy) +
               "\n";
    if (study.scheduler.kind != replay::SchedulerKind::Static) {
        out += std::string("scheduler=") +
               replay::schedulerKindName(study.scheduler.kind) + "\n";
        if (study.scheduler.kind == replay::SchedulerKind::WorkStealing) {
            out += "steal_rate=" +
                   canonicalDouble(study.scheduler.stealRate) + "\n";
            out += "steal_seed=" +
                   std::to_string(study.scheduler.stealSeed) + "\n";
        }
    }
}

} // namespace

StudyJob
luStudyJob(const apps::lu::LuConfig &app_config,
           const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "LU n=" + std::to_string(app_config.n) +
               " B=" + std::to_string(app_config.blockSize);
    job.canonicalConfig =
        canonicalHeader("lu") + "n=" + std::to_string(app_config.n) +
        "\nblock_size=" + std::to_string(app_config.blockSize) +
        "\nproc_rows=" + std::to_string(app_config.procRows) +
        "\nproc_cols=" + std::to_string(app_config.procCols) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs(), line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::lu::BlockedLu app(app_config, space, chain.sink());
        app.randomize(1234);
        app.factor();
        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop, app.flops().totalFlops(),
            "LU n=" + std::to_string(app_config.n) +
                " B=" + std::to_string(app_config.blockSize),
            ctx.pool));
    };
    return job;
}

StudyJob
cgStudyJob(const apps::cg::CgConfig &app_config, std::uint32_t iters,
           std::uint32_t warmup_iters, const StudyConfig &study,
           std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "CG " + std::to_string(app_config.dims) +
               "-D n=" + std::to_string(app_config.n);
    job.canonicalConfig =
        canonicalHeader("cg") + "n=" + std::to_string(app_config.n) +
        "\ndims=" + std::to_string(app_config.dims) +
        "\nproc_x=" + std::to_string(app_config.procX) +
        "\nproc_y=" + std::to_string(app_config.procY) +
        "\nproc_z=" + std::to_string(app_config.procZ) +
        "\nstrip_width=" + std::to_string(app_config.stripWidth) +
        "\niters=" + std::to_string(iters) +
        "\nwarmup_iters=" + std::to_string(warmup_iters) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, iters, warmup_iters, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs(), line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::cg::GridCg app(app_config, space, chain.sink());
        app.buildSystem();

        chain.setMeasuring(false);
        app.run(warmup_iters, 0.0);
        std::uint64_t warm_flops = app.flops().totalFlops();
        chain.setMeasuring(true);
        app.run(iters, 0.0);

        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "CG " + std::to_string(app_config.dims) +
                "-D n=" + std::to_string(app_config.n),
            ctx.pool));
    };
    return job;
}

StudyJob
fftStudyJob(const apps::fft::FftConfig &app_config,
            std::uint32_t transforms, std::uint32_t warmup_transforms,
            const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "FFT logN=" + std::to_string(app_config.logN) +
               " r=" + std::to_string(app_config.internalRadix);
    job.canonicalConfig =
        canonicalHeader("fft") + "log_n=" +
        std::to_string(app_config.logN) + "\nnum_procs=" +
        std::to_string(app_config.numProcs) + "\ninternal_radix=" +
        std::to_string(app_config.internalRadix) + "\ntransforms=" +
        std::to_string(transforms) + "\nwarmup_transforms=" +
        std::to_string(warmup_transforms) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, transforms, warmup_transforms, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::fft::ParallelFft app(app_config, space, chain.sink());
        for (std::uint64_t i = 0; i < app_config.N(); ++i)
            app.setInput(i, {std::sin(0.001 * static_cast<double>(i)),
                             std::cos(0.003 * static_cast<double>(i))});

        chain.setMeasuring(false);
        for (std::uint32_t t = 0; t < warmup_transforms; ++t)
            app.forward();
        std::uint64_t warm_flops = app.flops().totalFlops();
        chain.setMeasuring(true);
        for (std::uint32_t t = 0; t < transforms; ++t)
            app.forward();

        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "FFT logN=" + std::to_string(app_config.logN) +
                " r=" + std::to_string(app_config.internalRadix),
            ctx.pool));
    };
    return job;
}

StudyJob
barnesStudyJob(const apps::barnes::BarnesConfig &app_config,
               std::uint32_t steps, std::uint32_t warmup_steps,
               const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "Barnes-Hut n=" + std::to_string(app_config.numBodies) +
               " theta=" + std::to_string(app_config.theta).substr(0, 4);
    job.canonicalConfig =
        canonicalHeader("barnes") + "num_bodies=" +
        std::to_string(app_config.numBodies) + "\nnum_procs=" +
        std::to_string(app_config.numProcs) + "\ntheta=" +
        canonicalDouble(app_config.theta) + "\ndt=" +
        canonicalDouble(app_config.dt) + "\nsoftening=" +
        canonicalDouble(app_config.softening) + "\nquadrupole=" +
        std::to_string(app_config.quadrupole ? 1 : 0) + "\nseed=" +
        std::to_string(app_config.seed) + "\nsteps=" +
        std::to_string(steps) + "\nwarmup_steps=" +
        std::to_string(warmup_steps) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, steps, warmup_steps, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::barnes::BarnesHut app(app_config, space, chain.sink());
        app.initPlummer();

        chain.setMeasuring(false);
        for (std::uint32_t s = 0; s < warmup_steps; ++s)
            app.step();
        chain.setMeasuring(true);
        for (std::uint32_t s = 0; s < steps; ++s)
            app.step();

        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::ReadMissRate, 0,
            "Barnes-Hut n=" + std::to_string(app_config.numBodies) +
                " theta=" +
                std::to_string(app_config.theta).substr(0, 4),
            ctx.pool));
    };
    return job;
}

StudyJob
volrendStudyJob(const apps::volrend::VolumeDims &dims,
                const apps::volrend::RenderConfig &render,
                std::uint32_t frames, std::uint32_t warmup_frames,
                const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "Volrend " + std::to_string(dims.nx) + "^3";
    job.canonicalConfig =
        canonicalHeader("volrend") + "nx=" + std::to_string(dims.nx) +
        "\nny=" + std::to_string(dims.ny) + "\nnz=" +
        std::to_string(dims.nz) + "\nimage_width=" +
        std::to_string(render.imageWidth) + "\nimage_height=" +
        std::to_string(render.imageHeight) + "\nnum_procs=" +
        std::to_string(render.numProcs) + "\ndegrees_per_frame=" +
        canonicalDouble(render.degreesPerFrame) + "\nsample_step=" +
        canonicalDouble(render.sampleStep) + "\nopacity_cutoff=" +
        canonicalDouble(render.opacityCutoff) + "\ndensity_floor=" +
        std::to_string(render.densityFloor) + "\nsteal_chunk=" +
        std::to_string(render.stealChunk) + "\nuse_octree=" +
        std::to_string(render.useOctree ? 1 : 0) + "\nperspective=" +
        std::to_string(render.perspective ? 1 : 0) + "\nfov_degrees=" +
        canonicalDouble(render.fovDegrees) + "\nframes=" +
        std::to_string(frames) + "\nwarmup_frames=" +
        std::to_string(warmup_frames) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [dims, render, frames, warmup_frames, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(render.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::volrend::Volume vol(dims, space, chain.sink());
        vol.buildHeadPhantom();
        vol.buildOctree();
        apps::volrend::Renderer renderer(render, vol, space,
                                         chain.sink());

        chain.setMeasuring(false);
        for (std::uint32_t f = 0; f < warmup_frames; ++f)
            renderer.renderFrame();
        chain.setMeasuring(true);
        for (std::uint32_t f = 0; f < frames; ++f)
            renderer.renderFrame();

        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::ReadMissRate, 0,
            "Volrend " + std::to_string(dims.nx) + "^3", ctx.pool));
    };
    return job;
}

StudyJob
choleskyStudyJob(const apps::lu::LuConfig &app_config,
                 const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "Cholesky n=" + std::to_string(app_config.n) +
               " B=" + std::to_string(app_config.blockSize);
    job.canonicalConfig =
        canonicalHeader("cholesky") + "n=" +
        std::to_string(app_config.n) + "\nblock_size=" +
        std::to_string(app_config.blockSize) + "\nproc_rows=" +
        std::to_string(app_config.procRows) + "\nproc_cols=" +
        std::to_string(app_config.procCols) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs(), line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::lu::BlockedCholesky app(app_config, space, chain.sink());
        app.randomizeSpd(1234);
        app.factor();
        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop, app.flops().totalFlops(),
            "Cholesky n=" + std::to_string(app_config.n) +
                " B=" + std::to_string(app_config.blockSize),
            ctx.pool));
    };
    return job;
}

StudyJob
unstructuredStudyJob(const apps::cg::UnstructuredConfig &app_config,
                     std::uint32_t iters, std::uint32_t warmup_iters,
                     const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "UnstructuredCG n=" +
               std::to_string(app_config.numVertices);
    job.canonicalConfig =
        canonicalHeader("ucg") + "num_vertices=" +
        std::to_string(app_config.numVertices) + "\nneighbors=" +
        std::to_string(app_config.neighbors) + "\nnum_procs=" +
        std::to_string(app_config.numProcs) + "\npartition=" +
        std::to_string(static_cast<int>(app_config.partition)) +
        "\nseed=" + std::to_string(app_config.seed) + "\niters=" +
        std::to_string(iters) + "\nwarmup_iters=" +
        std::to_string(warmup_iters) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, iters, warmup_iters, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::cg::UnstructuredCg app(app_config, space, chain.sink());
        app.buildSystem();

        chain.setMeasuring(false);
        app.run(warmup_iters, 0.0);
        std::uint64_t warm_flops = app.flops().totalFlops();
        chain.setMeasuring(true);
        app.run(iters, 0.0);

        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "UnstructuredCG n=" +
                std::to_string(app_config.numVertices),
            ctx.pool));
    };
    return job;
}

StudyJob
fft2dStudyJob(const apps::fft::Fft2dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "FFT2D " + std::to_string(app_config.rows()) + "x" +
               std::to_string(app_config.cols());
    job.canonicalConfig =
        canonicalHeader("fft2d") + "log_rows=" +
        std::to_string(app_config.logRows) + "\nlog_cols=" +
        std::to_string(app_config.logCols) + "\nnum_procs=" +
        std::to_string(app_config.numProcs) + "\ninternal_radix=" +
        std::to_string(app_config.internalRadix) + "\ntransforms=" +
        std::to_string(transforms) + "\nwarmup_transforms=" +
        std::to_string(warmup_transforms) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, transforms, warmup_transforms, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::fft::Fft2d app(app_config, space, chain.sink());
        for (std::uint64_t r = 0; r < app_config.rows(); ++r) {
            for (std::uint64_t c = 0; c < app_config.cols(); ++c) {
                double t = 0.001 * static_cast<double>(
                                       r * app_config.cols() + c);
                app.setInput(r, c, {std::sin(t), std::cos(3.0 * t)});
            }
        }

        chain.setMeasuring(false);
        for (std::uint32_t t = 0; t < warmup_transforms; ++t)
            app.forward();
        std::uint64_t warm_flops = app.flops().totalFlops();
        chain.setMeasuring(true);
        for (std::uint32_t t = 0; t < transforms; ++t)
            app.forward();

        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "FFT2D " + std::to_string(app_config.rows()) + "x" +
                std::to_string(app_config.cols()),
            ctx.pool));
    };
    return job;
}

StudyJob
fft3dStudyJob(const apps::fft::Fft3dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "FFT3D " + std::to_string(app_config.n0()) + "x" +
               std::to_string(app_config.n1()) + "x" +
               std::to_string(app_config.n2());
    job.canonicalConfig =
        canonicalHeader("fft3d") + "log0=" +
        std::to_string(app_config.log0) + "\nlog1=" +
        std::to_string(app_config.log1) + "\nlog2=" +
        std::to_string(app_config.log2) + "\nnum_procs=" +
        std::to_string(app_config.numProcs) + "\ninternal_radix=" +
        std::to_string(app_config.internalRadix) + "\ntransforms=" +
        std::to_string(transforms) + "\nwarmup_transforms=" +
        std::to_string(warmup_transforms) + "\n";
    appendStudyConfig(job.canonicalConfig, study, line_bytes);
    job.body = [app_config, transforms, warmup_transforms, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        SinkChain chain(mp, space, study);
        apps::fft::Fft3d app(app_config, space, chain.sink());
        std::uint64_t flat = 0;
        for (std::uint64_t i0 = 0; i0 < app_config.n0(); ++i0) {
            for (std::uint64_t i1 = 0; i1 < app_config.n1(); ++i1) {
                for (std::uint64_t i2 = 0; i2 < app_config.n2();
                     ++i2, ++flat) {
                    double t = 0.001 * static_cast<double>(flat);
                    app.setInput(i0, i1, i2,
                                 {std::sin(t), std::cos(3.0 * t)});
                }
            }
        }

        chain.setMeasuring(false);
        for (std::uint32_t t = 0; t < warmup_transforms; ++t)
            app.forward();
        std::uint64_t warm_flops = app.flops().totalFlops();
        chain.setMeasuring(true);
        for (std::uint32_t t = 0; t < transforms; ++t)
            app.forward();

        chain.checkDeadline();
        return chain.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "FFT3D " + std::to_string(app_config.n0()) + "x" +
                std::to_string(app_config.n1()) + "x" +
                std::to_string(app_config.n2()),
            ctx.pool));
    };
    return job;
}

StudyResult
runLuStudy(const apps::lu::LuConfig &app_config, const StudyConfig &study,
           std::uint32_t line_bytes)
{
    return luStudyJob(app_config, study, line_bytes).body(StudyContext{});
}

StudyResult
runCholeskyStudy(const apps::lu::LuConfig &app_config,
                 const StudyConfig &study, std::uint32_t line_bytes)
{
    return choleskyStudyJob(app_config, study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runUnstructuredStudy(const apps::cg::UnstructuredConfig &app_config,
                     std::uint32_t iters, std::uint32_t warmup_iters,
                     const StudyConfig &study, std::uint32_t line_bytes)
{
    return unstructuredStudyJob(app_config, iters, warmup_iters, study,
                                line_bytes)
        .body(StudyContext{});
}

StudyResult
runFft2dStudy(const apps::fft::Fft2dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    return fft2dStudyJob(app_config, transforms, warmup_transforms,
                         study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runFft3dStudy(const apps::fft::Fft3dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    return fft3dStudyJob(app_config, transforms, warmup_transforms,
                         study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runCgStudy(const apps::cg::CgConfig &app_config, std::uint32_t iters,
           std::uint32_t warmup_iters, const StudyConfig &study,
           std::uint32_t line_bytes)
{
    return cgStudyJob(app_config, iters, warmup_iters, study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runFftStudy(const apps::fft::FftConfig &app_config,
            std::uint32_t transforms, std::uint32_t warmup_transforms,
            const StudyConfig &study, std::uint32_t line_bytes)
{
    return fftStudyJob(app_config, transforms, warmup_transforms, study,
                       line_bytes)
        .body(StudyContext{});
}

StudyResult
runBarnesStudy(const apps::barnes::BarnesConfig &app_config,
               std::uint32_t steps, std::uint32_t warmup_steps,
               const StudyConfig &study, std::uint32_t line_bytes)
{
    return barnesStudyJob(app_config, steps, warmup_steps, study,
                          line_bytes)
        .body(StudyContext{});
}

StudyResult
runVolrendStudy(const apps::volrend::VolumeDims &dims,
                const apps::volrend::RenderConfig &render,
                std::uint32_t frames, std::uint32_t warmup_frames,
                const StudyConfig &study, std::uint32_t line_bytes)
{
    return volrendStudyJob(dims, render, frames, warmup_frames, study,
                           line_bytes)
        .body(StudyContext{});
}

} // namespace wsg::core
