#include "core/runners.hh"

#include <cmath>
#include <memory>

#include "trace/address_space.hh"
#include "trace/sinks.hh"

namespace wsg::core
{

// Every study is defined once, as a job body; the serial run*Study
// entry points execute the same body inline with an empty context.
// Job bodies capture their configuration by value so the StudyJob can
// outlive the caller's locals (benches build job vectors up front).

namespace
{

sim::SimConfig
simConfigFor(std::uint32_t num_procs, std::uint32_t line_bytes,
             const StudyConfig &study)
{
    sim::SimConfig config;
    config.numProcs = num_procs;
    config.lineBytes = line_bytes;
    config.sampling = study.sampling;
    return config;
}

/**
 * Optional live race check. When the study asks for it, the
 * application traces into a TeeSink feeding both the Multiprocessor
 * and a RaceDetector, so the detector sees the exact reference and
 * sync-event stream the caches see — warm-up included (a warm-up race
 * is still a bug, even though its misses are excluded).
 */
class RaceCheck
{
  public:
    RaceCheck(sim::Multiprocessor &mp,
              const trace::SharedAddressSpace &space,
              const StudyConfig &study)
        : sink_(&mp)
    {
        if (!study.analyzeRaces)
            return;
        analysis::RaceConfig config;
        config.numProcs = mp.config().numProcs;
        detector_ = std::make_unique<analysis::RaceDetector>(config);
        detector_->attachAddressSpace(&space);
        tee_ = std::make_unique<trace::TeeSink>(mp, *detector_);
        sink_ = tee_.get();
    }

    /** Sink to hand the application. */
    trace::MemorySink *sink() const { return sink_; }

    /** Stamp the check's outcome into the study result. */
    StudyResult
    finish(StudyResult result) const
    {
        if (detector_ != nullptr)
            result.races = detector_->result();
        return result;
    }

  private:
    std::unique_ptr<analysis::RaceDetector> detector_;
    std::unique_ptr<trace::TeeSink> tee_;
    trace::MemorySink *sink_;
};

} // namespace

StudyJob
luStudyJob(const apps::lu::LuConfig &app_config,
           const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "LU n=" + std::to_string(app_config.n) +
               " B=" + std::to_string(app_config.blockSize);
    job.body = [app_config, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs(), line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::lu::BlockedLu app(app_config, space, race.sink());
        app.randomize(1234);
        app.factor();
        return race.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop, app.flops().totalFlops(),
            "LU n=" + std::to_string(app_config.n) +
                " B=" + std::to_string(app_config.blockSize),
            ctx.pool));
    };
    return job;
}

StudyJob
cgStudyJob(const apps::cg::CgConfig &app_config, std::uint32_t iters,
           std::uint32_t warmup_iters, const StudyConfig &study,
           std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "CG " + std::to_string(app_config.dims) +
               "-D n=" + std::to_string(app_config.n);
    job.body = [app_config, iters, warmup_iters, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs(), line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::cg::GridCg app(app_config, space, race.sink());
        app.buildSystem();

        mp.setMeasuring(false);
        app.run(warmup_iters, 0.0);
        std::uint64_t warm_flops = app.flops().totalFlops();
        mp.setMeasuring(true);
        app.run(iters, 0.0);

        return race.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "CG " + std::to_string(app_config.dims) +
                "-D n=" + std::to_string(app_config.n),
            ctx.pool));
    };
    return job;
}

StudyJob
fftStudyJob(const apps::fft::FftConfig &app_config,
            std::uint32_t transforms, std::uint32_t warmup_transforms,
            const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "FFT logN=" + std::to_string(app_config.logN) +
               " r=" + std::to_string(app_config.internalRadix);
    job.body = [app_config, transforms, warmup_transforms, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::fft::ParallelFft app(app_config, space, race.sink());
        for (std::uint64_t i = 0; i < app_config.N(); ++i)
            app.setInput(i, {std::sin(0.001 * static_cast<double>(i)),
                             std::cos(0.003 * static_cast<double>(i))});

        mp.setMeasuring(false);
        for (std::uint32_t t = 0; t < warmup_transforms; ++t)
            app.forward();
        std::uint64_t warm_flops = app.flops().totalFlops();
        mp.setMeasuring(true);
        for (std::uint32_t t = 0; t < transforms; ++t)
            app.forward();

        return race.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "FFT logN=" + std::to_string(app_config.logN) +
                " r=" + std::to_string(app_config.internalRadix),
            ctx.pool));
    };
    return job;
}

StudyJob
barnesStudyJob(const apps::barnes::BarnesConfig &app_config,
               std::uint32_t steps, std::uint32_t warmup_steps,
               const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "Barnes-Hut n=" + std::to_string(app_config.numBodies) +
               " theta=" + std::to_string(app_config.theta).substr(0, 4);
    job.body = [app_config, steps, warmup_steps, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::barnes::BarnesHut app(app_config, space, race.sink());
        app.initPlummer();

        mp.setMeasuring(false);
        for (std::uint32_t s = 0; s < warmup_steps; ++s)
            app.step();
        mp.setMeasuring(true);
        for (std::uint32_t s = 0; s < steps; ++s)
            app.step();

        return race.finish(analyzeWorkingSets(
            mp, study, Metric::ReadMissRate, 0,
            "Barnes-Hut n=" + std::to_string(app_config.numBodies) +
                " theta=" +
                std::to_string(app_config.theta).substr(0, 4),
            ctx.pool));
    };
    return job;
}

StudyJob
volrendStudyJob(const apps::volrend::VolumeDims &dims,
                const apps::volrend::RenderConfig &render,
                std::uint32_t frames, std::uint32_t warmup_frames,
                const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "Volrend " + std::to_string(dims.nx) + "^3";
    job.body = [dims, render, frames, warmup_frames, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(render.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::volrend::Volume vol(dims, space, race.sink());
        vol.buildHeadPhantom();
        vol.buildOctree();
        apps::volrend::Renderer renderer(render, vol, space,
                                         race.sink());

        mp.setMeasuring(false);
        for (std::uint32_t f = 0; f < warmup_frames; ++f)
            renderer.renderFrame();
        mp.setMeasuring(true);
        for (std::uint32_t f = 0; f < frames; ++f)
            renderer.renderFrame();

        return race.finish(analyzeWorkingSets(
            mp, study, Metric::ReadMissRate, 0,
            "Volrend " + std::to_string(dims.nx) + "^3", ctx.pool));
    };
    return job;
}

StudyJob
choleskyStudyJob(const apps::lu::LuConfig &app_config,
                 const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "Cholesky n=" + std::to_string(app_config.n) +
               " B=" + std::to_string(app_config.blockSize);
    job.body = [app_config, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs(), line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::lu::BlockedCholesky app(app_config, space, race.sink());
        app.randomizeSpd(1234);
        app.factor();
        return race.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop, app.flops().totalFlops(),
            "Cholesky n=" + std::to_string(app_config.n) +
                " B=" + std::to_string(app_config.blockSize),
            ctx.pool));
    };
    return job;
}

StudyJob
unstructuredStudyJob(const apps::cg::UnstructuredConfig &app_config,
                     std::uint32_t iters, std::uint32_t warmup_iters,
                     const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "UnstructuredCG n=" +
               std::to_string(app_config.numVertices);
    job.body = [app_config, iters, warmup_iters, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::cg::UnstructuredCg app(app_config, space, race.sink());
        app.buildSystem();

        mp.setMeasuring(false);
        app.run(warmup_iters, 0.0);
        std::uint64_t warm_flops = app.flops().totalFlops();
        mp.setMeasuring(true);
        app.run(iters, 0.0);

        return race.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "UnstructuredCG n=" +
                std::to_string(app_config.numVertices),
            ctx.pool));
    };
    return job;
}

StudyJob
fft2dStudyJob(const apps::fft::Fft2dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "FFT2D " + std::to_string(app_config.rows()) + "x" +
               std::to_string(app_config.cols());
    job.body = [app_config, transforms, warmup_transforms, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::fft::Fft2d app(app_config, space, race.sink());
        for (std::uint64_t r = 0; r < app_config.rows(); ++r) {
            for (std::uint64_t c = 0; c < app_config.cols(); ++c) {
                double t = 0.001 * static_cast<double>(
                                       r * app_config.cols() + c);
                app.setInput(r, c, {std::sin(t), std::cos(3.0 * t)});
            }
        }

        mp.setMeasuring(false);
        for (std::uint32_t t = 0; t < warmup_transforms; ++t)
            app.forward();
        std::uint64_t warm_flops = app.flops().totalFlops();
        mp.setMeasuring(true);
        for (std::uint32_t t = 0; t < transforms; ++t)
            app.forward();

        return race.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "FFT2D " + std::to_string(app_config.rows()) + "x" +
                std::to_string(app_config.cols()),
            ctx.pool));
    };
    return job;
}

StudyJob
fft3dStudyJob(const apps::fft::Fft3dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    StudyJob job;
    job.name = "FFT3D " + std::to_string(app_config.n0()) + "x" +
               std::to_string(app_config.n1()) + "x" +
               std::to_string(app_config.n2());
    job.body = [app_config, transforms, warmup_transforms, study,
                line_bytes](const StudyContext &ctx) {
        trace::SharedAddressSpace space;
        sim::Multiprocessor mp(
            simConfigFor(app_config.numProcs, line_bytes, study));
        mp.attachAddressSpace(&space);
        RaceCheck race(mp, space, study);
        apps::fft::Fft3d app(app_config, space, race.sink());
        std::uint64_t flat = 0;
        for (std::uint64_t i0 = 0; i0 < app_config.n0(); ++i0) {
            for (std::uint64_t i1 = 0; i1 < app_config.n1(); ++i1) {
                for (std::uint64_t i2 = 0; i2 < app_config.n2();
                     ++i2, ++flat) {
                    double t = 0.001 * static_cast<double>(flat);
                    app.setInput(i0, i1, i2,
                                 {std::sin(t), std::cos(3.0 * t)});
                }
            }
        }

        mp.setMeasuring(false);
        for (std::uint32_t t = 0; t < warmup_transforms; ++t)
            app.forward();
        std::uint64_t warm_flops = app.flops().totalFlops();
        mp.setMeasuring(true);
        for (std::uint32_t t = 0; t < transforms; ++t)
            app.forward();

        return race.finish(analyzeWorkingSets(
            mp, study, Metric::MissesPerFlop,
            app.flops().totalFlops() - warm_flops,
            "FFT3D " + std::to_string(app_config.n0()) + "x" +
                std::to_string(app_config.n1()) + "x" +
                std::to_string(app_config.n2()),
            ctx.pool));
    };
    return job;
}

StudyResult
runLuStudy(const apps::lu::LuConfig &app_config, const StudyConfig &study,
           std::uint32_t line_bytes)
{
    return luStudyJob(app_config, study, line_bytes).body(StudyContext{});
}

StudyResult
runCholeskyStudy(const apps::lu::LuConfig &app_config,
                 const StudyConfig &study, std::uint32_t line_bytes)
{
    return choleskyStudyJob(app_config, study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runUnstructuredStudy(const apps::cg::UnstructuredConfig &app_config,
                     std::uint32_t iters, std::uint32_t warmup_iters,
                     const StudyConfig &study, std::uint32_t line_bytes)
{
    return unstructuredStudyJob(app_config, iters, warmup_iters, study,
                                line_bytes)
        .body(StudyContext{});
}

StudyResult
runFft2dStudy(const apps::fft::Fft2dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    return fft2dStudyJob(app_config, transforms, warmup_transforms,
                         study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runFft3dStudy(const apps::fft::Fft3dConfig &app_config,
              std::uint32_t transforms, std::uint32_t warmup_transforms,
              const StudyConfig &study, std::uint32_t line_bytes)
{
    return fft3dStudyJob(app_config, transforms, warmup_transforms,
                         study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runCgStudy(const apps::cg::CgConfig &app_config, std::uint32_t iters,
           std::uint32_t warmup_iters, const StudyConfig &study,
           std::uint32_t line_bytes)
{
    return cgStudyJob(app_config, iters, warmup_iters, study, line_bytes)
        .body(StudyContext{});
}

StudyResult
runFftStudy(const apps::fft::FftConfig &app_config,
            std::uint32_t transforms, std::uint32_t warmup_transforms,
            const StudyConfig &study, std::uint32_t line_bytes)
{
    return fftStudyJob(app_config, transforms, warmup_transforms, study,
                       line_bytes)
        .body(StudyContext{});
}

StudyResult
runBarnesStudy(const apps::barnes::BarnesConfig &app_config,
               std::uint32_t steps, std::uint32_t warmup_steps,
               const StudyConfig &study, std::uint32_t line_bytes)
{
    return barnesStudyJob(app_config, steps, warmup_steps, study,
                          line_bytes)
        .body(StudyContext{});
}

StudyResult
runVolrendStudy(const apps::volrend::VolumeDims &dims,
                const apps::volrend::RenderConfig &render,
                std::uint32_t frames, std::uint32_t warmup_frames,
                const StudyConfig &study, std::uint32_t line_bytes)
{
    return volrendStudyJob(dims, render, frames, warmup_frames, study,
                           line_bytes)
        .body(StudyContext{});
}

} // namespace wsg::core
