/**
 * @file
 * Set-associative cache with pluggable replacement, including the
 * direct-mapped (1-way) organization the paper discusses in Section 6.4
 * ("the direct-mapped cache size required to hold the important working
 * set is about three times as large as the corresponding fully associative
 * cache size").
 */

#ifndef WSG_MEMSYS_SET_ASSOC_HH
#define WSG_MEMSYS_SET_ASSOC_HH

#include <cstdint>
#include <random>
#include <vector>

#include "memsys/cache.hh"

namespace wsg::memsys
{

/** Replacement policy for SetAssocCache. */
enum class ReplacementPolicy : std::uint8_t
{
    LRU,
    FIFO,
    Random,
};

/**
 * Set-associative cache.
 *
 * Sets are indexed by line-address bits; ways within a set are kept in
 * recency/insertion order (small linear scans — associativity is small).
 */
class SetAssocCache : public Cache
{
  public:
    /**
     * @param num_sets Power-of-two set count.
     * @param ways Associativity (1 == direct-mapped).
     * @param policy Replacement policy.
     * @param seed RNG seed for Random replacement (deterministic runs).
     */
    SetAssocCache(std::uint64_t num_sets, std::uint32_t ways,
                  ReplacementPolicy policy = ReplacementPolicy::LRU,
                  std::uint64_t seed = 1);

    /** Build a direct-mapped cache with @p capacity_lines lines. */
    static SetAssocCache directMapped(std::uint64_t capacity_lines);

    AccessOutcome access(Addr line_addr) override;
    AccessOutcome accessTracked(Addr line_addr,
                                Eviction *evicted) override;
    bool invalidate(Addr line_addr) override;
    bool contains(Addr line_addr) const override;

    std::uint64_t
    capacityLines() const override
    {
        return numSets_ * ways_;
    }

    std::uint64_t residentLines() const override { return resident_; }
    void clear() override;

    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t ways() const { return ways_; }
    ReplacementPolicy policy() const { return policy_; }

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        /** Recency (LRU) or insertion (FIFO) stamp; larger is newer. */
        std::uint64_t stamp = 0;
    };

    std::size_t setIndex(Addr line_addr) const;
    /** Pointer to the way holding @p line_addr in its set, or nullptr. */
    Way *findWay(Addr line_addr);
    const Way *findWay(Addr line_addr) const;

    std::uint64_t numSets_;
    std::uint32_t ways_;
    ReplacementPolicy policy_;
    std::vector<Way> store_;
    std::uint64_t resident_ = 0;
    std::uint64_t tick_ = 0;
    std::mt19937_64 rng_;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_SET_ASSOC_HH
