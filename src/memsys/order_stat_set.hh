/**
 * @file
 * Order-statistic set over strictly increasing dense keys.
 *
 * The data structure behind the TreeMattson profiler. A Mattson stack
 * keeps one timestamp per live line and answers one query: how many
 * live timestamps exceed a given one (== the stack distance). The
 * timestamps are handed out monotonically and densely, so a key *is* a
 * position: the set is a bitmap with one presence bit per key in
 * [first-inserted, last-inserted], grouped into kGroupSize-key groups,
 * with a Fenwick tree (an implicit order-statistic tree) over the
 * per-group live counts. Every operation is search-free:
 *
 *   insertMax  set a bit + one Fenwick point update
 *   erase      clear a bit + one Fenwick point update
 *   rank       a few popcounts inside one group + one Fenwick prefix
 *
 * That is O(log(#groups)) per operation with no binary searches (the
 * branch mispredictions that dominate comparison-based trees), no
 * per-node allocation, and no key storage at all — the whole structure
 * is two flat arrays totalling ~10 bits per key of range.
 *
 * The cost of the density trick is that memory is proportional to the
 * *key range*, not the live count: erased keys leave dead bits behind.
 * The holder is expected to renumber its keys when the range outgrows
 * the live set (TreeStackDistanceProfiler compacts at range > 4x live,
 * amortized O(1) per insert); the set itself never reorganizes.
 */

#ifndef WSG_MEMSYS_ORDER_STAT_SET_HH
#define WSG_MEMSYS_ORDER_STAT_SET_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsg::memsys
{

/** Set of uint64 keys; inserts must arrive in strictly increasing
 *  order, erases and rank queries are unrestricted. Memory grows with
 *  the span between the first and last key ever inserted — keep keys
 *  dense (consecutive timestamps are ideal). */
class OrderStatSet
{
  public:
    /** Keys per Fenwick leaf: the rank query scans at most
     *  kGroupSize / 64 bitmap words, the Fenwick tree has one entry
     *  per kGroupSize keys of range. */
    static constexpr std::uint64_t kGroupSize = 256;

    /** Insert @p key; precondition: key exceeds every key ever
     *  inserted (not checked — the profiler's timestamps guarantee
     *  it). */
    void
    insertMax(std::uint64_t key)
    {
        if (bits_.empty())
            base_ = key;
        std::uint64_t idx = key - base_;
        std::size_t w = static_cast<std::size_t>(idx / 64);
        if (w >= bits_.size())
            bits_.resize(w + 1, 0);
        bits_[w] |= std::uint64_t{1} << (idx % 64);
        std::size_t g = static_cast<std::size_t>(idx / kGroupSize);
        ensureGroups(g);
        fenwickAdd(g + 1, +1);
        limit_ = idx + 1;
        ++size_;
    }

    /** Remove @p key if present. @return true when it was. */
    bool
    erase(std::uint64_t key)
    {
        if (bits_.empty() || key < base_)
            return false;
        std::uint64_t idx = key - base_;
        if (idx >= limit_)
            return false;
        std::uint64_t &word = bits_[static_cast<std::size_t>(idx / 64)];
        std::uint64_t mask = std::uint64_t{1} << (idx % 64);
        if (!(word & mask))
            return false;
        word &= ~mask;
        fenwickAdd(static_cast<std::size_t>(idx / kGroupSize) + 1, -1);
        --size_;
        return true;
    }

    /** Number of present keys strictly greater than @p key (which may
     *  or may not be present itself). */
    std::uint64_t
    countGreater(std::uint64_t key) const
    {
        if (size_ == 0)
            return 0;
        if (key < base_)
            return size_;
        std::uint64_t idx = key - base_;
        if (idx + 1 >= limit_)
            return 0;
        // Keys in groups beyond idx's, via the Fenwick tree...
        std::size_t g = static_cast<std::size_t>(idx / kGroupSize);
        std::uint64_t n = size_ - fenwickPrefix(g + 1);
        // ...plus the tail of idx's own group, via popcount.
        std::uint64_t start = idx + 1;
        std::size_t w = static_cast<std::size_t>(start / 64);
        std::size_t group_end = std::min(
            static_cast<std::size_t>((g + 1) * (kGroupSize / 64)),
            bits_.size());
        if (w < group_end) {
            n += static_cast<std::uint64_t>(std::popcount(
                bits_[w] & (~std::uint64_t{0} << (start % 64))));
            for (++w; w < group_end; ++w)
                n += static_cast<std::uint64_t>(std::popcount(bits_[w]));
        }
        return n;
    }

    /** Whether @p key is present. */
    bool
    contains(std::uint64_t key) const
    {
        if (bits_.empty() || key < base_)
            return false;
        std::uint64_t idx = key - base_;
        if (idx >= limit_)
            return false;
        return (bits_[static_cast<std::size_t>(idx / 64)] >>
                (idx % 64)) &
               1;
    }

    std::uint64_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Span in keys between the first and last insert — the quantity
     *  that, not size(), governs memory. The holder watches this to
     *  decide when to renumber. */
    std::uint64_t span() const { return limit_; }

    void
    clear()
    {
        bits_.clear();
        fenwick_.clear();
        base_ = 0;
        limit_ = 0;
        size_ = 0;
    }

    /** Approximate resident bytes (bitmap + Fenwick tree). */
    std::uint64_t
    memoryBytes() const
    {
        return sizeof(*this) +
               bits_.capacity() * sizeof(std::uint64_t) +
               fenwick_.capacity() * sizeof(std::uint64_t);
    }

  private:
    /** Grow the Fenwick tree to cover groups [0, g]. A fresh entry at
     *  1-based index j must hold the count sum over (j - lowbit(j),
     *  j]; the new group is empty, so that is a difference of two
     *  existing prefix sums. */
    void
    ensureGroups(std::size_t g)
    {
        if (fenwick_.empty())
            fenwick_.push_back(0);
        while (fenwick_.size() <= g + 1) {
            std::size_t j = fenwick_.size();
            fenwick_.push_back(fenwickPrefix(j - 1) -
                               fenwickPrefix(j - (j & (~j + 1))));
        }
    }

    /** Fenwick point update at 1-based group index @p i. */
    void
    fenwickAdd(std::size_t i, std::int64_t delta)
    {
        for (; i < fenwick_.size(); i += i & (~i + 1))
            fenwick_[i] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(fenwick_[i]) + delta);
    }

    /** Total present keys in groups [0, i) (i is 1-based-exclusive). */
    std::uint64_t
    fenwickPrefix(std::size_t i) const
    {
        std::uint64_t sum = 0;
        for (; i > 0; i -= i & (~i + 1))
            sum += fenwick_[i];
        return sum;
    }

    /** Presence bit per key offset; bit (key - base_) set iff key is
     *  in the set. */
    std::vector<std::uint64_t> bits_;
    /** Fenwick tree over per-group present counts, 1-based;
     *  fenwick_[0] unused. */
    std::vector<std::uint64_t> fenwick_;
    /** Key of bit 0 == the first key inserted since clear(). */
    std::uint64_t base_ = 0;
    /** One past the highest used bit index (== span in keys). */
    std::uint64_t limit_ = 0;
    std::uint64_t size_ = 0;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_ORDER_STAT_SET_HH
