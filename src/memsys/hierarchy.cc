#include "memsys/hierarchy.hh"

#include <stdexcept>

namespace wsg::memsys
{

TwoLevelCache::TwoLevelCache(std::unique_ptr<Cache> l1,
                             std::unique_ptr<Cache> l2)
    : l1_(std::move(l1)), l2_(std::move(l2))
{
    if (!l1_ || !l2_)
        throw std::invalid_argument("TwoLevelCache: null level");
}

ServiceLevel
TwoLevelCache::accessDetailed(Addr line_addr)
{
    ++stats_.accesses;
    if (l1_->access(line_addr) == AccessOutcome::Hit)
        return ServiceLevel::L1;
    ++stats_.l1Misses;
    // The L1 access above already allocated the line in L1 (fill).
    if (l2_->access(line_addr) == AccessOutcome::Hit)
        return ServiceLevel::L2;
    ++stats_.l2Misses;
    return ServiceLevel::Memory;
}

bool
TwoLevelCache::invalidate(Addr line_addr)
{
    bool in_l1 = l1_->invalidate(line_addr);
    bool in_l2 = l2_->invalidate(line_addr);
    return in_l1 || in_l2;
}

bool
TwoLevelCache::contains(Addr line_addr) const
{
    return l1_->contains(line_addr) || l2_->contains(line_addr);
}

void
TwoLevelCache::clear()
{
    l1_->clear();
    l2_->clear();
    stats_ = HierarchyStats{};
}

} // namespace wsg::memsys
