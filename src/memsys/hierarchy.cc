#include "memsys/hierarchy.hh"

#include <stdexcept>

namespace wsg::memsys
{

void
NodeHierarchySpec::validate(std::uint32_t line_bytes) const
{
    if (!twoLevel())
        return;
    if (l1Bytes < line_bytes)
        throw std::invalid_argument(
            "NodeHierarchySpec: L1 must hold at least one line (" +
            std::to_string(l1Bytes) + " B < " +
            std::to_string(line_bytes) + " B line)");
    if (l2Bytes <= l1Bytes)
        throw std::invalid_argument(
            "NodeHierarchySpec: L2 (" + std::to_string(l2Bytes) +
            " B) must be larger than L1 (" + std::to_string(l1Bytes) +
            " B)");
}

std::string
hierarchyLabel(const NodeHierarchySpec &spec)
{
    switch (spec.kind) {
      case HierarchyKind::TwoLevelInclusive:
        return "incl:" + std::to_string(spec.l1Bytes) + ":" +
               std::to_string(spec.l2Bytes);
      case HierarchyKind::TwoLevelExclusive:
        return "excl:" + std::to_string(spec.l1Bytes) + ":" +
               std::to_string(spec.l2Bytes);
      case HierarchyKind::SingleLevel: break;
    }
    return "single";
}

NodeHierarchySpec
parseHierarchySpec(const std::string &label)
{
    NodeHierarchySpec spec;
    if (label == "single" || label.empty())
        return spec;
    std::string sizes;
    if (label.rfind("incl:", 0) == 0) {
        spec.kind = HierarchyKind::TwoLevelInclusive;
        sizes = label.substr(5);
    } else if (label.rfind("excl:", 0) == 0) {
        spec.kind = HierarchyKind::TwoLevelExclusive;
        sizes = label.substr(5);
    } else {
        throw std::invalid_argument(
            "unknown hierarchy '" + label +
            "' (expected single, incl:<l1>:<l2> or excl:<l1>:<l2>)");
    }
    std::size_t colon = sizes.find(':');
    if (colon == std::string::npos)
        throw std::invalid_argument(
            "hierarchy '" + label + "' needs two sizes: " +
            (spec.kind == HierarchyKind::TwoLevelInclusive ? "incl"
                                                           : "excl") +
            ":<l1Bytes>:<l2Bytes>");
    try {
        std::size_t used = 0;
        spec.l1Bytes = std::stoull(sizes.substr(0, colon), &used);
        if (used != colon)
            throw std::invalid_argument("trailing characters");
        std::string l2 = sizes.substr(colon + 1);
        spec.l2Bytes = std::stoull(l2, &used);
        if (used != l2.size())
            throw std::invalid_argument("trailing characters");
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "hierarchy '" + label + "' has malformed sizes (expected "
            "decimal byte counts)");
    }
    if (spec.l2Bytes <= spec.l1Bytes)
        throw std::invalid_argument(
            "hierarchy '" + label + "': L2 must be larger than L1");
    return spec;
}

TwoLevelCache::TwoLevelCache(std::unique_ptr<Cache> l1,
                             std::unique_ptr<Cache> l2,
                             InclusionPolicy inclusion)
    : l1_(std::move(l1)), l2_(std::move(l2)), inclusion_(inclusion)
{
    if (!l1_ || !l2_)
        throw std::invalid_argument("TwoLevelCache: null level");
}

ServiceLevel
TwoLevelCache::accessNonInclusive(Addr line_addr)
{
    if (l1_->access(line_addr) == AccessOutcome::Hit)
        return ServiceLevel::L1;
    ++stats_.l1Misses;
    // The L1 access above already allocated the line in L1 (fill).
    if (l2_->access(line_addr) == AccessOutcome::Hit)
        return ServiceLevel::L2;
    ++stats_.l2Misses;
    return ServiceLevel::Memory;
}

ServiceLevel
TwoLevelCache::accessInclusive(Addr line_addr)
{
    if (l1_->access(line_addr) == AccessOutcome::Hit)
        return ServiceLevel::L1;
    ++stats_.l1Misses;
    // L1 victims stay in L2 (inclusion), so the L1 fill needs no
    // victim handling; the L2 fill does — an L2 eviction must
    // back-invalidate the victim from L1 or inclusion breaks.
    Eviction evicted;
    if (l2_->accessTracked(line_addr, &evicted) == AccessOutcome::Hit)
        return ServiceLevel::L2;
    ++stats_.l2Misses;
    if (evicted.valid)
        l1_->invalidate(evicted.line);
    return ServiceLevel::Memory;
}

ServiceLevel
TwoLevelCache::accessExclusive(Addr line_addr)
{
    if (l1_->contains(line_addr)) {
        l1_->access(line_addr); // recency touch
        return ServiceLevel::L1;
    }
    ++stats_.l1Misses;
    // The line moves up into L1 wherever it comes from; remove it from
    // L2 first so the levels stay disjoint.
    bool in_l2 = l2_->contains(line_addr);
    if (in_l2)
        l2_->invalidate(line_addr);
    else
        ++stats_.l2Misses;
    Eviction evicted;
    l1_->accessTracked(line_addr, &evicted);
    // The displaced L1 line (disjointness: not in L2) spills into L2;
    // whatever L2 drops to make room leaves the hierarchy.
    if (evicted.valid)
        l2_->access(evicted.line);
    return in_l2 ? ServiceLevel::L2 : ServiceLevel::Memory;
}

ServiceLevel
TwoLevelCache::accessDetailed(Addr line_addr)
{
    ++stats_.accesses;
    switch (inclusion_) {
      case InclusionPolicy::Inclusive:
        return accessInclusive(line_addr);
      case InclusionPolicy::Exclusive:
        return accessExclusive(line_addr);
      case InclusionPolicy::NonInclusive: break;
    }
    return accessNonInclusive(line_addr);
}

bool
TwoLevelCache::invalidate(Addr line_addr)
{
    bool in_l1 = l1_->invalidate(line_addr);
    bool in_l2 = l2_->invalidate(line_addr);
    return in_l1 || in_l2;
}

bool
TwoLevelCache::contains(Addr line_addr) const
{
    return l1_->contains(line_addr) || l2_->contains(line_addr);
}

void
TwoLevelCache::clear()
{
    l1_->clear();
    l2_->clear();
    stats_ = HierarchyStats{};
}

} // namespace wsg::memsys
