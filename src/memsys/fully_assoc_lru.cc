#include "memsys/fully_assoc_lru.hh"

#include <stdexcept>

namespace wsg::memsys
{

FullyAssocLru::FullyAssocLru(std::uint64_t capacity_lines)
    : capacity_(capacity_lines)
{
    if (capacity_ == 0)
        throw std::invalid_argument("FullyAssocLru: zero capacity");
}

AccessOutcome
FullyAssocLru::access(Addr line_addr)
{
    return accessTracked(line_addr, nullptr);
}

AccessOutcome
FullyAssocLru::accessTracked(Addr line_addr, Eviction *evicted)
{
    if (evicted)
        evicted->valid = false;
    auto it = index_.find(line_addr);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return AccessOutcome::Hit;
    }

    if (lru_.size() >= capacity_) {
        Addr victim = lru_.back();
        lru_.pop_back();
        index_.erase(victim);
        if (evicted) {
            evicted->line = victim;
            evicted->valid = true;
        }
    }
    lru_.push_front(line_addr);
    index_[line_addr] = lru_.begin();
    return AccessOutcome::Miss;
}

bool
FullyAssocLru::invalidate(Addr line_addr)
{
    auto it = index_.find(line_addr);
    if (it == index_.end())
        return false;
    lru_.erase(it->second);
    index_.erase(it);
    return true;
}

bool
FullyAssocLru::contains(Addr line_addr) const
{
    return index_.count(line_addr) != 0;
}

void
FullyAssocLru::clear()
{
    lru_.clear();
    index_.clear();
}

} // namespace wsg::memsys
