/**
 * @file
 * Order-statistic-tree exact Mattson profiler (ProfilerKind::TreeMattson).
 *
 * Semantically identical — bit for bit, enforced by
 * test_memsys_profiler_differential — to StackDistanceProfiler: the
 * same RefClass classification, the same tombstone behaviour, the same
 * distances. The difference is purely mechanical: live timestamps sit
 * in an OrderStatSet — a dense bitmap with an implicit order-statistic
 * tree over group counts — whose operations are all search-free bit
 * twiddles plus short Fenwick walks. Timestamps are handed out
 * consecutively so the set stays dense; when erased stamps have blown
 * the span past 4x the live count the profiler renumbers them (an
 * order-preserving O(live log live) walk, amortized O(1) per access
 * because at least 3x live accesses must pass between renumberings).
 * Renumbering preserves the relative order of live stamps, so every
 * reported distance is unaffected — the bit-identical guarantee holds
 * across compaction points.
 */

#ifndef WSG_MEMSYS_TREE_STACK_DISTANCE_HH
#define WSG_MEMSYS_TREE_STACK_DISTANCE_HH

#include <cstdint>
#include <unordered_map>

#include "memsys/order_stat_set.hh"
#include "memsys/profiler.hh"

namespace wsg::memsys
{

/** Exact Mattson over an order-statistic set of live timestamps. */
class TreeStackDistanceProfiler : public Profiler
{
  public:
    ProfilerKind kind() const override { return ProfilerKind::TreeMattson; }

    DistanceSample access(Addr line) override;

    void accessBatch(const Addr *lines, std::size_t n,
                     DistanceSample *out) override;

    bool invalidate(Addr line) override;

    bool evict(Addr line) override;

    bool
    tracks(Addr line) const override
    {
        return last_.count(line) != 0;
    }

    std::uint64_t liveLines() const override { return live_.size(); }

    std::uint64_t
    touchedLines() const override
    {
        return static_cast<std::uint64_t>(last_.size());
    }

    void clear() override;

    std::uint64_t memoryBytes() const override;

  private:
    static constexpr std::int64_t kInvalidated = -1;
    /** Never renumber below this span: tiny footprints would otherwise
     *  renumber constantly for a few KB of bitmap. */
    static constexpr std::uint64_t kMinRenumberSpan = std::uint64_t{1}
                                                      << 16;

    /** The shared classification + stack update; the non-virtual core
     *  of both access() and accessBatch(). */
    DistanceSample accessOne(Addr line);

    /** Reassign live stamps to 1..live in the same relative order and
     *  rebuild the set densely; distances are invariant under this. */
    void renumber();

    /** addr -> timestamp of latest access, or kInvalidated tombstone. */
    std::unordered_map<Addr, std::int64_t> last_;
    /** Timestamps of live (non-tombstoned) lines. */
    OrderStatSet live_;
    /** Last timestamp handed out; strictly increasing between
     *  renumberings. */
    std::uint64_t now_ = 0;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_TREE_STACK_DISTANCE_HH
