/**
 * @file
 * Mattson LRU stack-distance profiler.
 *
 * This is the paper's measuring instrument generalized to every cache size
 * at once: for a fully associative LRU cache, a reference hits in a cache
 * of capacity C lines iff its stack distance (number of *distinct* lines
 * referenced since the previous reference to the same line) is < C. One
 * profiling pass therefore yields the exact miss count for all cache sizes
 * simultaneously — the whole miss-rate-versus-cache-size curve of
 * Figures 2, 4, 5, 6 and 7 from a single run.
 *
 * Coherence is folded in through invalidate(): an invalidated line is
 * removed from the stack, and the next access to it is classified as a
 * Coherence miss (a miss at every cache size — the paper's "inherent
 * communication" floor). First-ever accesses are Cold misses, which the
 * study driver can exclude by warming up.
 *
 * Implementation: each line keeps the timestamp of its latest access; a
 * Fenwick (binary indexed) tree over timestamps counts "live" stamps, so a
 * stack distance is one prefix-sum query — O(log n) per reference, with
 * periodic timestamp compaction to keep the tree proportional to the
 * number of live lines rather than the trace length.
 */

#ifndef WSG_MEMSYS_STACK_DISTANCE_HH
#define WSG_MEMSYS_STACK_DISTANCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "memsys/profiler.hh"
#include "trace/memref.hh"

namespace wsg::memsys
{

/**
 * Single-processor LRU stack-distance profiler with invalidation
 * support — the ProfilerKind::ListMattson construction.
 */
class StackDistanceProfiler : public Profiler
{
  public:
    StackDistanceProfiler();

    ProfilerKind kind() const override { return ProfilerKind::ListMattson; }

    /**
     * Profile a reference to @p line and update the stack.
     * @return the classified stack distance of the access.
     */
    DistanceSample access(Addr line) override;

    /** Batched form: identical to n access() calls, minus the virtual
     *  dispatch per reference. */
    void accessBatch(const Addr *lines, std::size_t n,
                     DistanceSample *out) override;

    /**
     * Remove @p line from the stack (coherence invalidation).
     * @return true when the line was live.
     */
    bool invalidate(Addr line) override;

    /**
     * Forget @p line entirely: remove it from the stack *and* from the
     * access history, as if it had never been touched. Unlike
     * invalidate(), no tombstone is left, so a later access is Cold,
     * not Coherence. This is the eviction primitive of fixed-size
     * spatial sampling (src/approx): lines pushed above the admission
     * threshold must stop consuming stack state immediately.
     * @return true when the line was known (live or tombstoned).
     */
    bool evict(Addr line) override;

    /** Whether @p line has ever been accessed (incl. tombstones). */
    bool
    tracks(Addr line) const override
    {
        return last_.count(line) != 0;
    }

    /** Number of lines currently in the stack (== footprint in lines). */
    std::uint64_t liveLines() const override { return live_; }

    /** Number of distinct lines ever touched. */
    std::uint64_t
    touchedLines() const override
    {
        return static_cast<std::uint64_t>(last_.size());
    }

    /** Forget everything (stack, history, tombstones). */
    void clear() override;

    /**
     * Approximate resident bytes: hash-map entries plus the Fenwick
     * tree. Used by the sampling diagnostics to report how much memory
     * exact profiling costs versus the sampled configuration.
     */
    std::uint64_t memoryBytes() const override;

  private:
    static constexpr std::int64_t kInvalidated = -1;

    /** Fenwick prefix sum over slots 1..i. */
    std::uint64_t prefix(std::uint64_t i) const;
    /** Fenwick point update at slot i by delta (+1/-1). */
    void update(std::uint64_t i, int delta);
    /** Renumber live timestamps to 1..live_ and shrink the tree. */
    void compact();

    /** addr -> latest slot (1-based), or kInvalidated tombstone. */
    std::unordered_map<Addr, std::int64_t> last_;
    /** Fenwick tree, 1-based; tree_[0] unused. */
    std::vector<std::uint32_t> tree_;
    /** Next slot to hand out. */
    std::uint64_t now_ = 0;
    /** Number of live (non-tombstone) lines. */
    std::uint64_t live_ = 0;
};

/**
 * Reference implementation: an explicit LRU stack maintained as a vector.
 * O(n) per access — used only by property tests to validate
 * StackDistanceProfiler on random traces.
 */
class NaiveStackProfiler
{
  public:
    DistanceSample access(Addr line);
    bool invalidate(Addr line);
    /** Full forget, mirroring Profiler::evict semantics: the line
     *  leaves the stack *and* the seen set, so a retouch is Cold. */
    bool evict(Addr line);
    std::uint64_t
    liveLines() const
    {
        return static_cast<std::uint64_t>(stack_.size());
    }

  private:
    /** MRU at index 0. */
    std::vector<Addr> stack_;
    std::unordered_map<Addr, bool> seen_;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_STACK_DISTANCE_HH
