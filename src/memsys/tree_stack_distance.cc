#include "memsys/tree_stack_distance.hh"

#include <algorithm>
#include <vector>

namespace wsg::memsys
{

DistanceSample
TreeStackDistanceProfiler::accessOne(Addr line)
{
    DistanceSample sample;
    auto it = last_.find(line);
    if (it == last_.end()) {
        sample.kind = RefClass::Cold;
    } else if (it->second == kInvalidated) {
        sample.kind = RefClass::Coherence;
    } else {
        sample.kind = RefClass::Finite;
        auto stamp = static_cast<std::uint64_t>(it->second);
        // Depth == number of live lines touched more recently.
        sample.distance = live_.countGreater(stamp);
        live_.erase(stamp);
    }

    ++now_;
    if (it != last_.end())
        it->second = static_cast<std::int64_t>(now_);
    else
        last_.emplace(line, static_cast<std::int64_t>(now_));
    live_.insertMax(now_);
    if (live_.span() > kMinRenumberSpan &&
        live_.span() > 4 * live_.size())
        renumber();
    return sample;
}

void
TreeStackDistanceProfiler::renumber()
{
    // The live stamps are exactly the non-tombstone values of last_
    // (one per live line). Sorting them gives the order-preserving
    // renumbering old-stamp -> rank.
    std::vector<std::uint64_t> stamps;
    stamps.reserve(static_cast<std::size_t>(live_.size()));
    for (const auto &entry : last_)
        if (entry.second != kInvalidated)
            stamps.push_back(static_cast<std::uint64_t>(entry.second));
    std::sort(stamps.begin(), stamps.end());
    live_.clear();
    for (std::uint64_t i = 0; i < stamps.size(); ++i)
        live_.insertMax(i + 1);
    for (auto &entry : last_) {
        if (entry.second == kInvalidated)
            continue;
        auto it = std::lower_bound(
            stamps.begin(), stamps.end(),
            static_cast<std::uint64_t>(entry.second));
        entry.second = (it - stamps.begin()) + 1;
    }
    now_ = stamps.size();
}

DistanceSample
TreeStackDistanceProfiler::access(Addr line)
{
    return accessOne(line);
}

void
TreeStackDistanceProfiler::accessBatch(const Addr *lines, std::size_t n,
                                       DistanceSample *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = accessOne(lines[i]);
}

bool
TreeStackDistanceProfiler::invalidate(Addr line)
{
    auto it = last_.find(line);
    if (it == last_.end() || it->second == kInvalidated)
        return false;
    live_.erase(static_cast<std::uint64_t>(it->second));
    it->second = kInvalidated;
    return true;
}

bool
TreeStackDistanceProfiler::evict(Addr line)
{
    auto it = last_.find(line);
    if (it == last_.end())
        return false;
    if (it->second != kInvalidated)
        live_.erase(static_cast<std::uint64_t>(it->second));
    last_.erase(it);
    return true;
}

void
TreeStackDistanceProfiler::clear()
{
    last_.clear();
    live_.clear();
    now_ = 0;
}

std::uint64_t
TreeStackDistanceProfiler::memoryBytes() const
{
    // Same map-node constant as the list profiler so exact-vs-exact
    // memory comparisons isolate the index structure.
    constexpr std::uint64_t kMapNodeBytes = 48;
    return static_cast<std::uint64_t>(last_.size()) * kMapNodeBytes +
           live_.memoryBytes() + sizeof(*this);
}

} // namespace wsg::memsys
