/**
 * @file
 * Two-level cache hierarchy.
 *
 * The paper's working-set hierarchies are explicitly pitched at
 * multi-level caches ("how large different levels of a multiprocessor's
 * cache hierarchy should be", Section 1): a small L1 sized for lev1WS
 * and a larger L2 sized for lev2WS. This model composes two Cache
 * organizations; an access that misses in L1 is looked up (and allocated)
 * in L2, and only an L2 miss goes to memory.
 *
 * Three inclusion disciplines are modelled (InclusionPolicy):
 *
 *  - NonInclusive ("accidentally inclusive", the default and the
 *    common behaviour of early two-level designs): L1 fills also
 *    allocate in L2, but L2 evictions do not back-invalidate L1.
 *  - Inclusive: L2 is a strict superset of L1 — an L2 eviction
 *    back-invalidates the victim from L1, so every live L1 line is in
 *    L2 at all times.
 *  - Exclusive: L1 and L2 are disjoint — an L2 hit moves the line up
 *    into L1, and the L1 victim it displaces spills down into L2, so
 *    the levels together act as one cache of combined capacity.
 *
 * Coherence invalidations are applied to both levels under every
 * discipline.
 */

#ifndef WSG_MEMSYS_HIERARCHY_HH
#define WSG_MEMSYS_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "memsys/cache.hh"

namespace wsg::memsys
{

/** Where an access was satisfied. */
enum class ServiceLevel : std::uint8_t
{
    L1,
    L2,
    Memory,
};

/** Inclusion discipline between the two levels. */
enum class InclusionPolicy : std::uint8_t
{
    NonInclusive,
    Inclusive,
    Exclusive,
};

/**
 * Per-node cache hierarchy shape, as a machine-configuration axis:
 * either the paper's single level of cache per processor, or a private
 * L1 backed by a larger per-node L2 (inclusive or exclusive). Sizes
 * are in bytes; the simulator converts to lines with its line size.
 */
enum class HierarchyKind : std::uint8_t
{
    SingleLevel,
    TwoLevelInclusive,
    TwoLevelExclusive,
};

struct NodeHierarchySpec
{
    HierarchyKind kind = HierarchyKind::SingleLevel;
    /** Private L1 capacity in bytes (two-level kinds only). */
    std::uint64_t l1Bytes = 4096;
    /** Per-node L2 capacity in bytes; must exceed l1Bytes. */
    std::uint64_t l2Bytes = 65536;

    bool twoLevel() const { return kind != HierarchyKind::SingleLevel; }

    /** @throws std::invalid_argument when the sizes cannot form a
     *  hierarchy at @p line_bytes granularity. */
    void validate(std::uint32_t line_bytes) const;
};

/**
 * Canonical spelling of a hierarchy spec: "single", or
 * "incl:<l1Bytes>:<l2Bytes>" / "excl:<l1Bytes>:<l2Bytes>". Used by the
 * CLI flags, the JSON report and the campaign grid axis.
 */
std::string hierarchyLabel(const NodeHierarchySpec &spec);

/** Parse a hierarchyLabel spelling. @throws std::invalid_argument. */
NodeHierarchySpec parseHierarchySpec(const std::string &label);

/** Hit/miss counters per level. */
struct HierarchyStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;

    double
    l1MissRate() const
    {
        return accesses ? static_cast<double>(l1Misses) / accesses : 0.0;
    }

    /** Global (memory) miss rate. */
    double
    memoryMissRate() const
    {
        return accesses ? static_cast<double>(l2Misses) / accesses : 0.0;
    }

    /** L2 local miss rate (of the accesses that reached L2). */
    double
    l2LocalMissRate() const
    {
        return l1Misses ? static_cast<double>(l2Misses) / l1Misses : 0.0;
    }
};

/**
 * Two-level hierarchy behind the Cache interface: access() reports Miss
 * only when the request reaches memory, so it can be attached to the
 * Multiprocessor as a concrete cache (concreteReadMisses then counts
 * memory-level misses).
 */
class TwoLevelCache : public Cache
{
  public:
    /** Takes ownership of both levels. */
    TwoLevelCache(std::unique_ptr<Cache> l1, std::unique_ptr<Cache> l2,
                  InclusionPolicy inclusion = InclusionPolicy::NonInclusive);

    /** Detailed access: returns which level serviced the line. */
    ServiceLevel accessDetailed(Addr line_addr);

    AccessOutcome
    access(Addr line_addr) override
    {
        return accessDetailed(line_addr) == ServiceLevel::Memory
                   ? AccessOutcome::Miss
                   : AccessOutcome::Hit;
    }

    bool invalidate(Addr line_addr) override;
    bool contains(Addr line_addr) const override;

    std::uint64_t
    capacityLines() const override
    {
        return l1_->capacityLines() + l2_->capacityLines();
    }

    std::uint64_t
    residentLines() const override
    {
        return l1_->residentLines() + l2_->residentLines();
    }

    void clear() override;

    const HierarchyStats &stats() const { return stats_; }
    void resetStats() { stats_ = HierarchyStats{}; }

    InclusionPolicy inclusion() const { return inclusion_; }

    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }

  private:
    ServiceLevel accessNonInclusive(Addr line_addr);
    ServiceLevel accessInclusive(Addr line_addr);
    ServiceLevel accessExclusive(Addr line_addr);

    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    InclusionPolicy inclusion_;
    HierarchyStats stats_;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_HIERARCHY_HH
