/**
 * @file
 * Two-level cache hierarchy.
 *
 * The paper's working-set hierarchies are explicitly pitched at
 * multi-level caches ("how large different levels of a multiprocessor's
 * cache hierarchy should be", Section 1): a small L1 sized for lev1WS
 * and a larger L2 sized for lev2WS. This model composes two Cache
 * organizations; an access that misses in L1 is looked up (and allocated)
 * in L2, and only an L2 miss goes to memory.
 *
 * The hierarchy is non-inclusive non-exclusive ("accidentally
 * inclusive"): L1 fills also allocate in L2, but L2 evictions do not
 * back-invalidate L1 — the common behaviour of early two-level designs.
 * Coherence invalidations are applied to both levels.
 */

#ifndef WSG_MEMSYS_HIERARCHY_HH
#define WSG_MEMSYS_HIERARCHY_HH

#include <cstdint>
#include <memory>

#include "memsys/cache.hh"

namespace wsg::memsys
{

/** Where an access was satisfied. */
enum class ServiceLevel : std::uint8_t
{
    L1,
    L2,
    Memory,
};

/** Hit/miss counters per level. */
struct HierarchyStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;

    double
    l1MissRate() const
    {
        return accesses ? static_cast<double>(l1Misses) / accesses : 0.0;
    }

    /** Global (memory) miss rate. */
    double
    memoryMissRate() const
    {
        return accesses ? static_cast<double>(l2Misses) / accesses : 0.0;
    }

    /** L2 local miss rate (of the accesses that reached L2). */
    double
    l2LocalMissRate() const
    {
        return l1Misses ? static_cast<double>(l2Misses) / l1Misses : 0.0;
    }
};

/**
 * Two-level hierarchy behind the Cache interface: access() reports Miss
 * only when the request reaches memory, so it can be attached to the
 * Multiprocessor as a concrete cache (concreteReadMisses then counts
 * memory-level misses).
 */
class TwoLevelCache : public Cache
{
  public:
    /** Takes ownership of both levels. */
    TwoLevelCache(std::unique_ptr<Cache> l1, std::unique_ptr<Cache> l2);

    /** Detailed access: returns which level serviced the line. */
    ServiceLevel accessDetailed(Addr line_addr);

    AccessOutcome
    access(Addr line_addr) override
    {
        return accessDetailed(line_addr) == ServiceLevel::Memory
                   ? AccessOutcome::Miss
                   : AccessOutcome::Hit;
    }

    bool invalidate(Addr line_addr) override;
    bool contains(Addr line_addr) const override;

    std::uint64_t
    capacityLines() const override
    {
        return l1_->capacityLines() + l2_->capacityLines();
    }

    std::uint64_t
    residentLines() const override
    {
        return l1_->residentLines() + l2_->residentLines();
    }

    void clear() override;

    const HierarchyStats &stats() const { return stats_; }
    void resetStats() { stats_ = HierarchyStats{}; }

    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }

  private:
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    HierarchyStats stats_;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_HIERARCHY_HH
