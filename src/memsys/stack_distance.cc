#include "memsys/stack_distance.hh"

#include <algorithm>
#include <cassert>

namespace wsg::memsys
{

namespace
{

/** Initial Fenwick capacity (slots); grows by compaction as needed. */
constexpr std::uint64_t kInitialSlots = 1 << 16;

} // namespace

StackDistanceProfiler::StackDistanceProfiler()
    : tree_(kInitialSlots + 1, 0)
{}

std::uint64_t
StackDistanceProfiler::prefix(std::uint64_t i) const
{
    std::uint64_t sum = 0;
    for (; i > 0; i -= i & (~i + 1))
        sum += tree_[i];
    return sum;
}

void
StackDistanceProfiler::update(std::uint64_t i, int delta)
{
    for (; i < tree_.size(); i += i & (~i + 1))
        tree_[i] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(tree_[i]) + delta);
}

void
StackDistanceProfiler::compact()
{
    // Collect live (addr, slot) pairs in slot order and renumber densely.
    std::vector<std::pair<std::uint64_t, Addr>> livePairs;
    livePairs.reserve(live_);
    for (const auto &[addr, slot] : last_) {
        if (slot != kInvalidated)
            livePairs.emplace_back(static_cast<std::uint64_t>(slot), addr);
    }
    std::sort(livePairs.begin(), livePairs.end());

    std::uint64_t slots = std::max<std::uint64_t>(kInitialSlots,
                                                  4 * live_ + 16);
    tree_.assign(slots + 1, 0);
    now_ = 0;
    for (const auto &[oldSlot, addr] : livePairs) {
        (void)oldSlot;
        ++now_;
        last_[addr] = static_cast<std::int64_t>(now_);
        update(now_, +1);
    }
}

DistanceSample
StackDistanceProfiler::access(Addr line)
{
    if (now_ + 1 >= tree_.size())
        compact();

    DistanceSample sample;
    auto it = last_.find(line);
    if (it == last_.end()) {
        sample.kind = RefClass::Cold;
    } else if (it->second == kInvalidated) {
        sample.kind = RefClass::Coherence;
    } else {
        sample.kind = RefClass::Finite;
        auto slot = static_cast<std::uint64_t>(it->second);
        // Depth == number of live lines touched more recently than `line`.
        sample.distance = live_ - prefix(slot);
        update(slot, -1);
        --live_;
    }

    ++now_;
    last_[line] = static_cast<std::int64_t>(now_);
    update(now_, +1);
    ++live_;
    return sample;
}

void
StackDistanceProfiler::accessBatch(const Addr *lines, std::size_t n,
                                   DistanceSample *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = access(lines[i]);
}

bool
StackDistanceProfiler::invalidate(Addr line)
{
    auto it = last_.find(line);
    if (it == last_.end() || it->second == kInvalidated)
        return false;
    update(static_cast<std::uint64_t>(it->second), -1);
    it->second = kInvalidated;
    --live_;
    return true;
}

bool
StackDistanceProfiler::evict(Addr line)
{
    auto it = last_.find(line);
    if (it == last_.end())
        return false;
    if (it->second != kInvalidated) {
        update(static_cast<std::uint64_t>(it->second), -1);
        --live_;
    }
    last_.erase(it);
    return true;
}

std::uint64_t
StackDistanceProfiler::memoryBytes() const
{
    // unordered_map node: pair + bucket pointer + next pointer, ~48 B
    // on 64-bit hosts; the exact constant only matters for exact-vs-
    // sampled *ratios*, which use the same formula on both sides.
    constexpr std::uint64_t kMapNodeBytes = 48;
    return static_cast<std::uint64_t>(last_.size()) * kMapNodeBytes +
           static_cast<std::uint64_t>(tree_.size()) * sizeof(tree_[0]) +
           sizeof(*this);
}

void
StackDistanceProfiler::clear()
{
    last_.clear();
    tree_.assign(kInitialSlots + 1, 0);
    now_ = 0;
    live_ = 0;
}

DistanceSample
NaiveStackProfiler::access(Addr line)
{
    DistanceSample sample;
    auto pos = std::find(stack_.begin(), stack_.end(), line);
    if (pos != stack_.end()) {
        sample.kind = RefClass::Finite;
        sample.distance =
            static_cast<std::uint64_t>(pos - stack_.begin());
        stack_.erase(pos);
    } else if (seen_.count(line)) {
        sample.kind = RefClass::Coherence;
    } else {
        sample.kind = RefClass::Cold;
    }
    stack_.insert(stack_.begin(), line);
    seen_[line] = true;
    return sample;
}

bool
NaiveStackProfiler::invalidate(Addr line)
{
    auto pos = std::find(stack_.begin(), stack_.end(), line);
    if (pos == stack_.end())
        return false;
    stack_.erase(pos);
    return true;
}

bool
NaiveStackProfiler::evict(Addr line)
{
    bool known = seen_.erase(line) != 0;
    auto pos = std::find(stack_.begin(), stack_.end(), line);
    if (pos != stack_.end())
        stack_.erase(pos);
    return known;
}

} // namespace wsg::memsys
