#include "memsys/set_assoc.hh"

#include <stdexcept>

namespace wsg::memsys
{

SetAssocCache::SetAssocCache(std::uint64_t num_sets, std::uint32_t ways,
                             ReplacementPolicy policy, std::uint64_t seed)
    : numSets_(num_sets), ways_(ways), policy_(policy),
      store_(num_sets * ways), rng_(seed)
{
    if (numSets_ == 0 || (numSets_ & (numSets_ - 1)) != 0)
        throw std::invalid_argument(
            "SetAssocCache: set count must be a power of two");
    if (ways_ == 0)
        throw std::invalid_argument("SetAssocCache: zero associativity");
}

SetAssocCache
SetAssocCache::directMapped(std::uint64_t capacity_lines)
{
    return SetAssocCache(capacity_lines, 1);
}

std::size_t
SetAssocCache::setIndex(Addr line_addr) const
{
    // Line addresses are already shifted by the caller's line size; mixing
    // the bits a little avoids pathological striding across segments.
    return static_cast<std::size_t>(line_addr & (numSets_ - 1));
}

SetAssocCache::Way *
SetAssocCache::findWay(Addr line_addr)
{
    std::size_t base = setIndex(line_addr) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = store_[base + w];
        if (way.valid && way.line == line_addr)
            return &way;
    }
    return nullptr;
}

const SetAssocCache::Way *
SetAssocCache::findWay(Addr line_addr) const
{
    return const_cast<SetAssocCache *>(this)->findWay(line_addr);
}

AccessOutcome
SetAssocCache::access(Addr line_addr)
{
    return accessTracked(line_addr, nullptr);
}

AccessOutcome
SetAssocCache::accessTracked(Addr line_addr, Eviction *evicted)
{
    if (evicted)
        evicted->valid = false;
    ++tick_;
    if (Way *hit = findWay(line_addr)) {
        if (policy_ == ReplacementPolicy::LRU)
            hit->stamp = tick_;
        return AccessOutcome::Hit;
    }

    // Miss: pick a victim way in the set.
    std::size_t base = setIndex(line_addr) * ways_;
    Way *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = store_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
    }
    if (!victim) {
        if (policy_ == ReplacementPolicy::Random) {
            victim = &store_[base + rng_() % ways_];
        } else {
            // LRU and FIFO both evict the smallest stamp.
            victim = &store_[base];
            for (std::uint32_t w = 1; w < ways_; ++w) {
                if (store_[base + w].stamp < victim->stamp)
                    victim = &store_[base + w];
            }
        }
        if (evicted) {
            evicted->line = victim->line;
            evicted->valid = true;
        }
    } else {
        ++resident_;
    }

    victim->line = line_addr;
    victim->valid = true;
    victim->stamp = tick_;
    return AccessOutcome::Miss;
}

bool
SetAssocCache::invalidate(Addr line_addr)
{
    if (Way *way = findWay(line_addr)) {
        way->valid = false;
        --resident_;
        return true;
    }
    return false;
}

bool
SetAssocCache::contains(Addr line_addr) const
{
    return findWay(line_addr) != nullptr;
}

void
SetAssocCache::clear()
{
    for (auto &way : store_)
        way = Way{};
    resident_ = 0;
    tick_ = 0;
}

} // namespace wsg::memsys
