/**
 * @file
 * The common stack-distance profiler interface.
 *
 * Every miss-rate-curve construction in the tree — the legacy
 * Fenwick-with-compaction exact Mattson, the order-statistic-tree exact
 * Mattson, and the AET approximate profiler — ingests one classified
 * reference at a time and accumulates a distribution from which the
 * whole miss-count-versus-cache-size curve is read off. This interface
 * is that contract: the simulator, the study runner and the benches
 * program against it, so constructions can be swapped per run
 * (SimConfig::profiler, --profiler) without touching any consumer.
 *
 * The one construction-specific degree of freedom is how a cache
 * capacity maps onto the recorded distribution: exact Mattson profilers
 * record stack distances, so the miss count at capacity C lines is
 * histogram.countAtLeast(C) — capacityToThreshold is the identity. AET
 * records quantized reuse times and maps C through its reuse-time model
 * (capacityToThreshold returns the reuse-time code t*(C)); the miss
 * count is then countAtLeast(t*(C)) against the same histogram type.
 * Consumers therefore evaluate every construction with one expression:
 *
 *   misses(C) = hist.countAtLeast(profiler.capacityToThreshold(C))
 *
 * which for the Mattson kinds is bit-identical to indexing the
 * histogram with C directly.
 */

#ifndef WSG_MEMSYS_PROFILER_HH
#define WSG_MEMSYS_PROFILER_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "trace/memref.hh"

namespace wsg::memsys
{

using trace::Addr;

/** Classification of one profiled reference. */
enum class RefClass : std::uint8_t
{
    /** Line was in the LRU stack; `distance` is its 0-based depth. */
    Finite,
    /** First-ever reference to the line. */
    Cold,
    /** Line was invalidated by another processor since last touch. */
    Coherence,
};

/** Result of profiling one reference. */
struct DistanceSample
{
    RefClass kind = RefClass::Cold;
    /** Valid only when kind == Finite: the stack distance for the
     *  Mattson kinds, the quantized reuse-time code for AET. */
    std::uint64_t distance = 0;
};

/** Which miss-rate-curve construction a profiler implements. */
enum class ProfilerKind : std::uint8_t
{
    /** Exact Mattson: Fenwick tree over timestamps with periodic
     *  compaction (the original instrument). */
    ListMattson,
    /** Exact Mattson: bitmap order-statistic tree over dense
     *  timestamps; bit-identical output to ListMattson, strictly
     *  faster. */
    TreeMattson,
    /** AET (average eviction time): approximate construction from the
     *  reuse-time distribution; O(1) per reference, no stack state. */
    Aet,
};

/** Canonical kind name (also the JSON and --profiler spelling). */
inline const char *
profilerKindName(ProfilerKind kind)
{
    switch (kind) {
      case ProfilerKind::ListMattson: return "list-mattson";
      case ProfilerKind::Aet: return "aet";
      case ProfilerKind::TreeMattson: break;
    }
    return "tree-mattson";
}

/**
 * Parse a kind name; accepts the canonical spellings plus the short
 * forms "list", "tree" and "aet".
 * @throws std::invalid_argument on an unknown name.
 */
inline ProfilerKind
parseProfilerKind(const std::string &name)
{
    if (name == "list" || name == "list-mattson")
        return ProfilerKind::ListMattson;
    if (name == "tree" || name == "tree-mattson")
        return ProfilerKind::TreeMattson;
    if (name == "aet")
        return ProfilerKind::Aet;
    throw std::invalid_argument(
        "unknown profiler kind '" + name +
        "' (expected list-mattson, tree-mattson or aet)");
}

/**
 * Abstract single-processor reference profiler. See the file comment
 * for the capacity-to-threshold contract; everything else mirrors the
 * original StackDistanceProfiler API, including the tombstone
 * semantics of invalidate() versus the full forget of evict().
 */
class Profiler
{
  public:
    virtual ~Profiler() = default;

    /** Which construction this is. */
    virtual ProfilerKind kind() const = 0;

    /** Profile one reference to @p line and update internal state. */
    virtual DistanceSample access(Addr line) = 0;

    /**
     * Profile a block of references in order; out[i] receives the
     * classified sample of lines[i]. The default loops over access();
     * implementations override with a devirtualized tight loop. Must
     * be exactly equivalent to n single calls — the batched-ingestion
     * property tests enforce this for every construction.
     */
    virtual void
    accessBatch(const Addr *lines, std::size_t n, DistanceSample *out)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = access(lines[i]);
    }

    /**
     * Coherence invalidation: remove @p line from the stack but keep a
     * tombstone so the next access classifies as Coherence.
     * @return true when the line was live.
     */
    virtual bool invalidate(Addr line) = 0;

    /**
     * Forget @p line entirely (stack and history); the next access is
     * Cold. The eviction primitive of fixed-size spatial sampling.
     * @return true when the line was known (live or tombstoned).
     */
    virtual bool evict(Addr line) = 0;

    /** Whether @p line has ever been accessed (incl. tombstones). */
    virtual bool tracks(Addr line) const = 0;

    /** Lines currently live in the stack (== footprint in lines). */
    virtual std::uint64_t liveLines() const = 0;

    /** Distinct lines ever touched (incl. tombstones). */
    virtual std::uint64_t touchedLines() const = 0;

    /**
     * Histogram threshold equivalent to a capacity of @p capacity_lines:
     * misses(C) == recorded-sample count >= capacityToThreshold(C).
     * Identity for the exact Mattson kinds; the reuse-time transform
     * for AET. Pure and thread-safe — curve points are evaluated
     * concurrently.
     */
    virtual std::uint64_t
    capacityToThreshold(std::uint64_t capacity_lines) const
    {
        return capacity_lines;
    }

    /** Forget everything (stack, history, tombstones, models). */
    virtual void clear() = 0;

    /** Approximate resident bytes of the construction. */
    virtual std::uint64_t memoryBytes() const = 0;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_PROFILER_HH
