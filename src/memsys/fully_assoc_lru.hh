/**
 * @file
 * Fully associative LRU cache — the paper's reference cache organization
 * ("we use fully associative caches with an LRU replacement policy",
 * Section 2.2).
 *
 * Implemented as a hash map over an intrusive doubly-linked list so that
 * access, invalidate and eviction are all O(1).
 */

#ifndef WSG_MEMSYS_FULLY_ASSOC_LRU_HH
#define WSG_MEMSYS_FULLY_ASSOC_LRU_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "memsys/cache.hh"

namespace wsg::memsys
{

/** Fully associative cache with true-LRU replacement. */
class FullyAssocLru : public Cache
{
  public:
    /** @param capacity_lines Capacity in lines; must be >= 1. */
    explicit FullyAssocLru(std::uint64_t capacity_lines);

    AccessOutcome access(Addr line_addr) override;
    AccessOutcome accessTracked(Addr line_addr,
                                Eviction *evicted) override;
    bool invalidate(Addr line_addr) override;
    bool contains(Addr line_addr) const override;
    std::uint64_t capacityLines() const override { return capacity_; }

    std::uint64_t
    residentLines() const override
    {
        return static_cast<std::uint64_t>(lru_.size());
    }

    void clear() override;

  private:
    std::uint64_t capacity_;
    /** MRU at front, LRU at back. */
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> index_;
};

} // namespace wsg::memsys

#endif // WSG_MEMSYS_FULLY_ASSOC_LRU_HH
