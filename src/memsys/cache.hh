/**
 * @file
 * Abstract cache model interface.
 *
 * Caches operate on *line numbers* (byte address divided by the line
 * size): the caller (the multiprocessor simulator) splits each MemRef
 * into cache-line-sized pieces and converts to dense line indices. This
 * keeps the models simple, makes the line size a property of the machine
 * configuration rather than of each cache implementation, and gives
 * set-indexed organizations dense index bits.
 */

#ifndef WSG_MEMSYS_CACHE_HH
#define WSG_MEMSYS_CACHE_HH

#include <cstdint>

#include "trace/memref.hh"

namespace wsg::memsys
{

using trace::Addr;

/** Outcome of a cache access. */
enum class AccessOutcome : std::uint8_t
{
    Hit,
    Miss,
};

/** A line evicted by a miss-fill (valid == false when none was). */
struct Eviction
{
    Addr line = 0;
    bool valid = false;
};

/**
 * A single cache with some organization and replacement policy.
 */
class Cache
{
  public:
    virtual ~Cache() = default;

    /**
     * Access the line at @p line_addr, allocating it on a miss.
     *
     * @param line_addr Line-aligned simulated address.
     * @return Hit or Miss.
     */
    virtual AccessOutcome access(Addr line_addr) = 0;

    /**
     * access() that additionally reports the line a miss-fill evicted,
     * for hierarchies that must observe victims (inclusive L2s
     * back-invalidate them from L1, exclusive L1s spill them into L2).
     * The default cannot observe evictions and reports none;
     * organizations that can, override it.
     */
    virtual AccessOutcome
    accessTracked(Addr line_addr, Eviction *evicted)
    {
        if (evicted)
            evicted->valid = false;
        return access(line_addr);
    }

    /**
     * Remove the line if present (coherence invalidation).
     * @return true when the line was present.
     */
    virtual bool invalidate(Addr line_addr) = 0;

    /** @return true when the line is currently cached. */
    virtual bool contains(Addr line_addr) const = 0;

    /** Capacity in lines. */
    virtual std::uint64_t capacityLines() const = 0;

    /** Number of lines currently resident. */
    virtual std::uint64_t residentLines() const = 0;

    /** Drop all contents. */
    virtual void clear() = 0;
};

/** Align @p addr down to a multiple of @p line_bytes (power of two). */
inline Addr
lineAlign(Addr addr, std::uint32_t line_bytes)
{
    return addr & ~static_cast<Addr>(line_bytes - 1);
}

} // namespace wsg::memsys

#endif // WSG_MEMSYS_CACHE_HH
