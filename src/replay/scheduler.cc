#include "replay/scheduler.hh"

#include <numeric>
#include <stdexcept>
#include <utility>

#include "stats/json_report.hh"

namespace wsg::replay
{

namespace
{

/** Identity forever: the paper's static partition. */
class StaticScheduler final : public Scheduler
{
  public:
    std::uint32_t
    placement(std::uint32_t task) const override
    {
        return task;
    }

    std::uint32_t advance() override { return 0; }

    bool isIdentity() const override { return true; }
};

/** Rotate every task by one slot per interval. */
class RoundRobinScheduler final : public Scheduler
{
  public:
    explicit RoundRobinScheduler(std::uint32_t num_tasks)
        : numTasks_(num_tasks)
    {
    }

    std::uint32_t
    placement(std::uint32_t task) const override
    {
        return (task + offset_) % numTasks_;
    }

    std::uint32_t
    advance() override
    {
        offset_ = (offset_ + 1) % numTasks_;
        return numTasks_ > 1 ? numTasks_ : 0;
    }

    bool isIdentity() const override { return offset_ == 0; }

  private:
    std::uint32_t numTasks_;
    std::uint32_t offset_ = 0;
};

/** Seeded randomized stealing: per interval, each task is stolen with
 *  probability stealRate by swapping its slot with a uniformly chosen
 *  victim's. Swaps keep the map a bijection by construction. */
class WorkStealingScheduler final : public Scheduler
{
  public:
    WorkStealingScheduler(const SchedulerSpec &spec,
                          std::uint32_t num_tasks)
        : spec_(spec), map_(num_tasks), rng_(spec.stealSeed)
    {
        std::iota(map_.begin(), map_.end(), 0u);
    }

    std::uint32_t
    placement(std::uint32_t task) const override
    {
        return map_[task];
    }

    std::uint32_t
    advance() override
    {
        std::uint32_t tasks = static_cast<std::uint32_t>(map_.size());
        previous_ = map_;
        for (std::uint32_t task = 0; task < tasks; ++task) {
            if (rng_.nextUnit() >= spec_.stealRate)
                continue;
            std::uint32_t victim =
                static_cast<std::uint32_t>(rng_.nextBelow(tasks));
            std::swap(map_[task], map_[victim]);
        }
        std::uint32_t moved = 0;
        identity_ = true;
        for (std::uint32_t task = 0; task < tasks; ++task) {
            moved += map_[task] != previous_[task] ? 1u : 0u;
            identity_ = identity_ && map_[task] == task;
        }
        return moved;
    }

    bool isIdentity() const override { return identity_; }

  private:
    SchedulerSpec spec_;
    std::vector<std::uint32_t> map_;
    std::vector<std::uint32_t> previous_;
    SplitMix64 rng_;
    bool identity_ = true;
};

} // namespace

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
    case SchedulerKind::Static:
        return "static";
    case SchedulerKind::RoundRobin:
        return "round-robin";
    default:
        return "work-stealing";
    }
}

std::string
schedulerSpecLabel(const SchedulerSpec &spec)
{
    switch (spec.kind) {
    case SchedulerKind::Static:
        return "static";
    case SchedulerKind::RoundRobin:
        return "round-robin";
    default:
        return "steal:r" +
               stats::JsonWriter::formatDouble(spec.stealRate) + ":s" +
               std::to_string(spec.stealSeed);
    }
}

SchedulerSpec
parseSchedulerSpec(const std::string &text, const SchedulerSpec &base)
{
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t colon = text.find(':', start);
        if (colon == std::string::npos) {
            tokens.push_back(text.substr(start));
            break;
        }
        tokens.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }

    SchedulerSpec spec = base;
    const std::string &policy = tokens.front();
    if (policy == "static") {
        spec.kind = SchedulerKind::Static;
    } else if (policy == "round-robin" || policy == "rr") {
        spec.kind = SchedulerKind::RoundRobin;
    } else if (policy == "steal" || policy == "work-stealing" ||
               policy == "ws") {
        spec.kind = SchedulerKind::WorkStealing;
    } else {
        throw std::invalid_argument(
            "unknown scheduler '" + policy +
            "' (expected static, round-robin, or steal[:rRATE][:sSEED])");
    }

    if (spec.kind != SchedulerKind::WorkStealing && tokens.size() > 1) {
        throw std::invalid_argument(
            "scheduler '" + policy + "' takes no options (got '" + text +
            "')");
    }
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &token = tokens[i];
        if (token.size() < 2 ||
            (token[0] != 'r' && token[0] != 's')) {
            throw std::invalid_argument(
                "malformed scheduler option '" + token + "' in '" +
                text + "' (expected rRATE or sSEED)");
        }
        std::size_t used = 0;
        try {
            if (token[0] == 'r')
                spec.stealRate = std::stod(token.substr(1), &used);
            else
                spec.stealSeed = std::stoull(token.substr(1), &used);
        } catch (const std::exception &) {
            used = std::string::npos;
        }
        if (used != token.size() - 1) {
            throw std::invalid_argument(
                "malformed scheduler option '" + token + "' in '" +
                text + "' (expected rRATE or sSEED)");
        }
    }
    if (spec.stealRate < 0.0 || spec.stealRate > 1.0) {
        throw std::invalid_argument(
            "steal rate " +
            stats::JsonWriter::formatDouble(spec.stealRate) +
            " is outside [0, 1]");
    }
    return spec;
}

std::unique_ptr<Scheduler>
makeScheduler(const SchedulerSpec &spec, std::uint32_t num_tasks)
{
    if (num_tasks == 0)
        throw std::invalid_argument(
            "makeScheduler: need at least one task");
    switch (spec.kind) {
    case SchedulerKind::Static:
        return std::make_unique<StaticScheduler>();
    case SchedulerKind::RoundRobin:
        return std::make_unique<RoundRobinScheduler>(num_tasks);
    default:
        return std::make_unique<WorkStealingScheduler>(spec, num_tasks);
    }
}

} // namespace wsg::replay
