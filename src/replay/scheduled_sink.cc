#include "replay/scheduled_sink.hh"

#include <stdexcept>
#include <string>

namespace wsg::replay
{

ScheduledReplaySink::ScheduledReplaySink(trace::MemorySink &inner,
                                         const SchedulerSpec &spec,
                                         std::uint32_t num_tasks)
    : inner_(inner), spec_(spec),
      scheduler_(makeScheduler(spec, num_tasks)), numTasks_(num_tasks)
{
}

trace::MemRef
ScheduledReplaySink::remap(const trace::MemRef &ref) const
{
    if (ref.pid >= numTasks_) {
        throw std::runtime_error(
            "ScheduledReplaySink: reference from task " +
            std::to_string(ref.pid) + " but the schedule covers only " +
            std::to_string(numTasks_) + " tasks");
    }
    trace::MemRef moved = ref;
    moved.pid = scheduler_->placement(ref.pid);
    return moved;
}

void
ScheduledReplaySink::access(const trace::MemRef &ref)
{
    if (scheduler_->isIdentity()) {
        inner_.access(ref);
        return;
    }
    inner_.access(remap(ref));
}

void
ScheduledReplaySink::accessBatch(const trace::MemRef *refs,
                                 std::size_t n)
{
    if (scheduler_->isIdentity()) {
        inner_.accessBatch(refs, n);
        return;
    }
    batch_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        batch_[i] = remap(refs[i]);
    inner_.accessBatch(batch_.data(), n);
}

void
ScheduledReplaySink::sync(const trace::SyncEvent &event)
{
    if (event.kind == trace::SyncKind::Barrier) {
        // Forward first — the barrier belongs to the interval it
        // closes — then advance into the next interval's assignment.
        inner_.sync(event);
        ++intervals_;
        migrations_ += scheduler_->advance();
        return;
    }
    if (scheduler_->isIdentity()) {
        inner_.sync(event);
        return;
    }
    if (event.pid >= numTasks_) {
        throw std::runtime_error(
            "ScheduledReplaySink: sync event from task " +
            std::to_string(event.pid) +
            " but the schedule covers only " +
            std::to_string(numTasks_) + " tasks");
    }
    trace::SyncEvent moved = event;
    moved.pid = scheduler_->placement(event.pid);
    inner_.sync(moved);
}

std::uint64_t
replayTrace(trace::TraceReader &reader, trace::MemorySink &sink,
            const SchedulerSpec &spec)
{
    ScheduledReplaySink scheduled(sink, spec, reader.numProcs());
    return reader.replay(scheduled);
}

} // namespace wsg::replay
