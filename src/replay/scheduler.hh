/**
 * @file
 * Trace-replay schedulers: policies that re-assign the trace's logical
 * tasks to processors at synchronization points.
 *
 * The paper's studies assume a *static* partition: the task that
 * touched an address range keeps touching it, so sharing misses come
 * only from the application's real communication. Real runtimes move
 * work — and every migration makes the migrated task's cached lines
 * remote, converting locality into coherence traffic. The replay
 * subsystem measures that effect on recorded traces: a Scheduler owns
 * a bijective task→processor map, and ScheduledReplaySink asks it to
 * advance() the map at every global barrier recorded in the trace
 * (barriers are the scheduling boundaries; lock events are remapped
 * like data but never trigger migration, which keeps the trace's
 * happens-before structure intact — see scheduled_sink.hh).
 *
 * Three policies:
 *  - Static: the identity map, forever. Replay is byte-identical to an
 *    unscheduled run — the control every other policy is measured
 *    against, and the default everywhere.
 *  - RoundRobin: rotate the map by one slot per barrier interval. The
 *    deterministic worst case: every task migrates at every barrier.
 *  - WorkStealing: per interval, each task is stolen with probability
 *    SchedulerSpec::stealRate — a swap with a uniformly chosen victim,
 *    driven by a seeded SplitMix64 — modelling randomized
 *    work-stealing runtimes (cf. Cole & Ramachandran's bound of O(s·B)
 *    extra false-sharing misses for s steals at B words per line,
 *    which bench_replay_schedulers measures against).
 *
 * Everything about a schedule is captured by SchedulerSpec (policy,
 * steal rate, seed): the spec rides in core::StudyConfig, is folded
 * into canonical configs and artifact names, and round-trips through
 * the label grammar of parseSchedulerSpec()/schedulerSpecLabel(), so
 * two runs with equal specs produce byte-identical reports no matter
 * how many workers executed them.
 */

#ifndef WSG_REPLAY_SCHEDULER_HH
#define WSG_REPLAY_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "replay/splitmix.hh"

namespace wsg::replay
{

/** Replay scheduling policy. */
enum class SchedulerKind : std::uint8_t
{
    Static,
    RoundRobin,
    WorkStealing,
};

/** Canonical policy name ("static", "round-robin", "work-stealing"). */
const char *schedulerKindName(SchedulerKind kind);

/**
 * Complete description of a replay schedule. Value-comparable; the
 * default (static) spec is the paper's assumption and leaves every
 * report and artifact byte-identical to a scheduler-oblivious run.
 */
struct SchedulerSpec
{
    SchedulerKind kind = SchedulerKind::Static;
    /** Per-task steal probability per barrier interval (WorkStealing
     *  only; must lie in [0, 1]). */
    double stealRate = 0.25;
    /** PRNG seed (WorkStealing only). Part of the canonical config:
     *  same seed, same schedule, same report bytes. */
    std::uint64_t stealSeed = 1;

    friend bool
    operator==(const SchedulerSpec &a, const SchedulerSpec &b)
    {
        if (a.kind != b.kind)
            return false;
        if (a.kind != SchedulerKind::WorkStealing)
            return true;
        return a.stealRate == b.stealRate && a.stealSeed == b.stealSeed;
    }
};

/**
 * Canonical label for a spec: "static", "round-robin", or
 * "steal:r<rate>:s<seed>". Labels are stable identifiers — they name
 * campaign axis values and artifact segments — and round-trip through
 * parseSchedulerSpec().
 */
std::string schedulerSpecLabel(const SchedulerSpec &spec);

/**
 * Parse a scheduler label, starting from @p base (so a label that
 * omits the rate or seed keeps the base's — CLI flags like
 * --steal-rate compose with --scheduler in either order).
 *
 * Grammar: a policy token — "static" | "round-robin" (alias "rr") |
 * "steal" (aliases "work-stealing", "ws") — optionally followed, for
 * stealing, by ":r<rate>" and/or ":s<seed>" in any order.
 *
 * @throws std::invalid_argument on an unknown policy, malformed
 *         options, options on a policy that takes none, or a rate
 *         outside [0, 1].
 */
SchedulerSpec parseSchedulerSpec(const std::string &text,
                                 const SchedulerSpec &base = {});

/**
 * A task→processor assignment that evolves at barrier intervals. The
 * map is always a bijection on [0, numTasks): every task runs
 * somewhere and no processor runs two tasks, so a scheduled replay
 * issues exactly the same references as the original trace, only from
 * different processors.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Processor currently running @p task (task ids are the pids
     *  recorded in the trace). */
    virtual std::uint32_t placement(std::uint32_t task) const = 0;

    /** Move to the next barrier interval's assignment.
     *  @return the number of tasks whose placement changed. */
    virtual std::uint32_t advance() = 0;

    /** True while the current assignment is the identity — the fast
     *  path: ScheduledReplaySink forwards references untouched. */
    virtual bool isIdentity() const = 0;
};

/** Build the scheduler @p spec describes over @p num_tasks tasks. */
std::unique_ptr<Scheduler> makeScheduler(const SchedulerSpec &spec,
                                         std::uint32_t num_tasks);

} // namespace wsg::replay

#endif // WSG_REPLAY_SCHEDULER_HH
