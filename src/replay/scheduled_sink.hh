/**
 * @file
 * ScheduledReplaySink — the sink adapter that applies a Scheduler to a
 * reference stream on its way into the memory system.
 *
 * The trace's pids are treated as *logical task* ids; the sink rewrites
 * each reference's pid to Scheduler::placement(task) before forwarding,
 * so downstream (caches, directory, profilers) sees the stream as the
 * scheduled machine would issue it. Scheduling boundaries are the
 * *global barriers* recorded in the trace: on every Barrier sync event
 * the sink forwards the barrier, then advances the scheduler into the
 * next interval's assignment and counts the migrations.
 *
 * Lock events are pid-remapped like data but deliberately never
 * trigger migration. A barrier is a total order — everything before it
 * happens-before everything after — so remapping across one cannot
 * reorder conflicting accesses; migrating at a lock (a partial order)
 * could, and would turn a race-free trace into one that only *looks*
 * racy because two halves of a critical section ran on different
 * processors. Restricting migration to barriers keeps every scheduled
 * replay exactly as race-free as its trace, which
 * test_replay_schedulers pins per policy under --analyze-races.
 *
 * The static (identity) schedule takes a fast path: while the map is
 * the identity the sink forwards references and batches untouched, so
 * a default-schedule study is byte- and speed-identical to one without
 * the sink — the scheduler axis costs nothing until it is used.
 */

#ifndef WSG_REPLAY_SCHEDULED_SINK_HH
#define WSG_REPLAY_SCHEDULED_SINK_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "replay/scheduler.hh"
#include "trace/memref.hh"
#include "trace/trace_file.hh"

namespace wsg::replay
{

/** MemorySink adapter that re-schedules the stream at barriers. */
class ScheduledReplaySink : public trace::MemorySink
{
  public:
    /**
     * @param inner Downstream sink (must outlive this sink).
     * @param spec Scheduling policy.
     * @param num_tasks Logical task count — the trace's processor
     *        count; every pid in the stream must be below it.
     */
    ScheduledReplaySink(trace::MemorySink &inner,
                        const SchedulerSpec &spec,
                        std::uint32_t num_tasks);

    void access(const trace::MemRef &ref) override;
    void accessBatch(const trace::MemRef *refs,
                     std::size_t n) override;
    void sync(const trace::SyncEvent &event) override;

    /** Spec this sink schedules with. */
    const SchedulerSpec &spec() const { return spec_; }

    /** Barrier intervals completed (scheduler advances). */
    std::uint64_t intervals() const { return intervals_; }

    /** Total task migrations across all intervals. */
    std::uint64_t migrations() const { return migrations_; }

  private:
    /** Rewrite @p ref's pid through the current placement. */
    trace::MemRef remap(const trace::MemRef &ref) const;

    trace::MemorySink &inner_;
    SchedulerSpec spec_;
    std::unique_ptr<Scheduler> scheduler_;
    std::uint32_t numTasks_;
    std::uint64_t intervals_ = 0;
    std::uint64_t migrations_ = 0;
    /** Scratch for remapped batches (reused across calls). */
    std::vector<trace::MemRef> batch_;
};

/**
 * Replay everything remaining in @p reader into @p sink under @p spec:
 * the streaming equivalent of TraceReader::replay with a scheduler in
 * front.
 * @return records delivered (data + sync).
 */
std::uint64_t replayTrace(trace::TraceReader &reader,
                          trace::MemorySink &sink,
                          const SchedulerSpec &spec);

} // namespace wsg::replay

#endif // WSG_REPLAY_SCHEDULED_SINK_HH
