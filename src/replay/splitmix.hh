/**
 * @file
 * SplitMix64 — the seeded PRNG behind randomized work stealing.
 *
 * This is the repository's only sanctioned source of randomness in a
 * study path, and it exists under strict rules: every study that uses
 * it takes an explicit seed (SchedulerSpec::stealSeed), the seed is
 * part of the study's canonical configuration (hashed into artifact
 * names), and a fixed seed yields byte-identical reports regardless of
 * worker count — pinned by test_replay_schedulers. That determinism is
 * what makes a randomized-scheduling study reproducible and its
 * artifacts cacheable, which is why std::mt19937 seeded from
 * std::random_device (the usual reflex) is banned by wsg_lint's
 * no-entropy rule instead.
 *
 * SplitMix64 itself is Steele, Lea & Flood's mixing function (the
 * java.util.SplittableRandom finalizer): a 64-bit Weyl sequence pushed
 * through two xor-multiply rounds. It is tiny, stateless beyond one
 * u64, passes BigCrush, and — unlike std::mt19937 — its output for a
 * given seed is pinned here by this repository's own tests rather than
 * by unverifiable library internals.
 *
 * fromDevice() is the one documented escape hatch for interactive
 * exploration ("show me *some* stealing schedule"); it carries the
 * wsg_lint allow() and must never be called on a study path — anything
 * that reaches a report must come from a spec-carried seed.
 */

#ifndef WSG_REPLAY_SPLITMIX_HH
#define WSG_REPLAY_SPLITMIX_HH

#include <cstdint>
#include <random>

namespace wsg::replay
{

/** Deterministic 64-bit PRNG (SplitMix64). */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 uniformly distributed bits. */
    constexpr std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1): the top 53 bits scaled down. */
    constexpr double
    nextUnit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Uniform integer in [0, @p bound); @p bound must be nonzero.
     * Rejection sampling, so the distribution is exactly uniform —
     * modulo bias would make steal-victim choice drift with the
     * processor count, muddying cross-machine comparisons.
     */
    constexpr std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Seed from the OS entropy pool. Exploration only — a generator
     * made here can never produce a reproducible report, so nothing on
     * a study path may call this; seeds there arrive via
     * SchedulerSpec::stealSeed. This is the documented exception to
     * the no-entropy lint rule.
     */
    static SplitMix64
    fromDevice()
    {
        std::random_device device; // wsg-lint: allow(no-entropy)
        return SplitMix64((static_cast<std::uint64_t>(device()) << 32) ^
                          device());
    }

  private:
    std::uint64_t state_;
};

} // namespace wsg::replay

#endif // WSG_REPLAY_SPLITMIX_HH
