#include "stats/knee.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "stats/units.hh"

namespace wsg::stats
{

std::vector<WorkingSet>
detectWorkingSets(const Curve &curve, const KneeConfig &config)
{
    std::vector<WorkingSet> sets;
    const auto &pts = curve.points();
    if (pts.size() < 2)
        return sets;

    // Walk the curve accumulating maximal "drop regions": runs of samples
    // where each step loses at least minStepDrop of the rate. Each region
    // whose total drop factor exceeds minKneeFactor becomes a knee.
    std::size_t i = 1;
    while (i < pts.size()) {
        double prev = pts[i - 1].y;
        double cur = pts[i].y;
        bool dropping = prev > config.rateFloor &&
                        cur < prev * (1.0 - config.minStepDrop);
        if (!dropping) {
            ++i;
            continue;
        }

        // Extend the region while the curve keeps dropping significantly.
        std::size_t start = i - 1;
        std::size_t end = i;
        while (end + 1 < pts.size()) {
            double a = pts[end].y;
            double b = pts[end + 1].y;
            if (a > config.rateFloor &&
                b < a * (1.0 - config.minStepDrop)) {
                ++end;
            } else {
                break;
            }
        }

        double before = pts[start].y;
        double after = pts[end].y;
        double factor = after > 0.0 ? before / after
                                    : std::numeric_limits<double>::infinity();
        if (factor >= config.minKneeFactor) {
            WorkingSet ws;
            ws.level = static_cast<int>(sets.size()) + 1;
            ws.sizeBytes = pts[end].x;
            ws.missRateBefore = before;
            ws.missRateAfter = after;
            // Core: the end of the sharpest single step in the region.
            double best = 0.0;
            ws.coreSizeBytes = pts[end].x;
            for (std::size_t k = start + 1; k <= end; ++k) {
                double step = pts[k].y > 0.0
                                  ? pts[k - 1].y / pts[k].y
                                  : std::numeric_limits<double>::infinity();
                if (step > best) {
                    best = step;
                    ws.coreSizeBytes = pts[k].x;
                }
            }
            sets.push_back(ws);
        }
        i = end + 1;
    }
    return sets;
}

std::string
describeWorkingSets(const std::vector<WorkingSet> &sets)
{
    std::ostringstream os;
    if (sets.empty()) {
        os << "  (no knees detected)\n";
        return os.str();
    }
    for (const auto &ws : sets) {
        os << "  lev" << ws.level << "WS: " << formatBytes(ws.sizeBytes)
           << "  miss rate " << formatRate(ws.missRateBefore) << " -> "
           << formatRate(ws.missRateAfter) << "  (x"
           << formatRate(ws.dropFactor());
        if (ws.coreSizeBytes != ws.sizeBytes)
            os << ", core at " << formatBytes(ws.coreSizeBytes);
        os << ")\n";
    }
    return os.str();
}

} // namespace wsg::stats
