/**
 * @file
 * A minimal JSON reader — the inverse of json_report.hh.
 *
 * Three consumers need to *read* JSON back: the serving daemon parses
 * request lines off its socket, the wsg-submit client parses response
 * headers, and the round-trip tests re-read emitted wsg-study-report-v3
 * artifacts to check the schema. The documents involved are small (one
 * request line, one report), so this is a straightforward recursive-
 * descent parser into an owning tree; no streaming, no SAX.
 *
 * Deliberate simplifications, all safe for our inputs:
 *  - numbers are parsed as double (the reports' integers are exact up
 *    to 2^53, far beyond any counter the tests inspect),
 *  - object member order is preserved and duplicate keys are kept
 *    (find() returns the first), matching the emitter's ordered style,
 *  - input depth is capped so a hostile request line cannot overflow
 *    the parser's stack.
 */

#ifndef WSG_STATS_JSON_PARSE_HH
#define WSG_STATS_JSON_PARSE_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wsg::stats
{

/** Thrown on malformed input; carries the byte offset of the error. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &message, std::size_t offset)
        : std::runtime_error(message + " at byte " +
                             std::to_string(offset)),
          offset_(offset)
    {}

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/** One parsed JSON value (an owning tree). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Members = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw std::runtime_error on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const Members &members() const;

    /** Array/object element count; 0 for scalars. */
    std::size_t size() const;

    /** First member with @p key, or null when absent / not an object. */
    const JsonValue *find(const std::string &key) const;

    /** find() that throws std::runtime_error when the key is absent. */
    const JsonValue &at(const std::string &key) const;

    /** Array element access (bounds-checked). */
    const JsonValue &operator[](std::size_t i) const;

    // Construction helpers used by the parser.
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue makeObject(Members v);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    Members members_;
};

/**
 * Parse one JSON document. Trailing whitespace is permitted, trailing
 * non-whitespace is an error (a request line is exactly one document).
 *
 * @throws JsonParseError on malformed input or nesting deeper than 64.
 */
JsonValue parseJson(std::string_view text);

} // namespace wsg::stats

#endif // WSG_STATS_JSON_PARSE_HH
