/**
 * @file
 * A sampled (x, y) curve — the basic object of the working-set study.
 *
 * Every figure in the paper is a "miss rate versus cache size" curve; this
 * class stores such curves, keeps them sorted by x, and offers the queries
 * the knee detector and the benches need (value lookup with step semantics,
 * log-log slope estimation, pointwise combination).
 */

#ifndef WSG_STATS_CURVE_HH
#define WSG_STATS_CURVE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace wsg::stats
{

/** One sample of a curve. */
struct CurvePoint
{
    double x = 0.0;
    double y = 0.0;
};

/**
 * A curve sampled at increasing x. Duplicate x values are collapsed,
 * keeping the last y inserted for that x.
 */
class Curve
{
  public:
    Curve() = default;

    /** Construct with a display name (used by the table printers). */
    explicit Curve(std::string name) : _name(std::move(name)) {}

    /** Insert or overwrite the sample at @p x. Keeps points sorted. */
    void addPoint(double x, double y);

    /** @return number of samples. */
    std::size_t size() const { return points_.size(); }

    /** @return true when the curve has no samples. */
    bool empty() const { return points_.empty(); }

    /** @return the i-th sample in increasing-x order. */
    const CurvePoint &operator[](std::size_t i) const { return points_[i]; }

    /** @return all samples in increasing-x order. */
    const std::vector<CurvePoint> &points() const { return points_; }

    const std::string &name() const { return _name; }
    void name(const std::string &new_name) { _name = new_name; }

    /**
     * Step-function lookup: the y of the largest sampled x that is <= @p x.
     * Below the first sample, the first y is returned. This matches the
     * semantics of a miss-rate curve indexed by cache size: a cache of
     * size s behaves like the largest measured size not exceeding s.
     */
    double valueAtOrBelow(double x) const;

    /** Linear interpolation between neighbouring samples (clamped). */
    double interpolate(double x) const;

    /** Smallest sampled x whose y is <= @p y_threshold, or -1 if none. */
    double firstXBelow(double y_threshold) const;

    /** Minimum / maximum y over all samples. Curve must be non-empty. */
    double minY() const;
    double maxY() const;

    /**
     * Estimate d(log y)/d(log x) by least squares over all samples with
     * positive x and y. Used by the growth-rate bench to verify the
     * exponents in Table 1 (e.g.\ communication ~ n^2 sqrt(P)).
     *
     * @return the fitted log-log slope; 0 for curves with < 2 usable
     *         samples.
     */
    double logLogSlope() const;

    /** Pointwise y -> y * s. */
    void scaleY(double s);

    /**
     * Pointwise combination with another curve sampled at the same x
     * values (checked). Returns a new curve with
     * y = combine(this.y, other.y).
     */
    template <typename BinaryOp>
    Curve
    combine(const Curve &other, BinaryOp op) const
    {
        Curve out(_name);
        for (const auto &p : points_)
            out.addPoint(p.x, op(p.y, other.valueAtOrBelow(p.x)));
        return out;
    }

  private:
    std::string _name;
    std::vector<CurvePoint> points_;
};

} // namespace wsg::stats

#endif // WSG_STATS_CURVE_HH
