/**
 * @file
 * Content hashing for cacheable artifacts.
 *
 * The serving layer keys its result cache by a hash of the canonical
 * study-config serialization (see core/runners.hh); the same hash is
 * embedded in the wsg-study-report-v3 JSON as `config_hash` so an
 * artifact names the exact configuration that produced it. FNV-1a is
 * used because the input is tiny (a few hundred canonical bytes), the
 * function is a dozen lines with no dependencies, and the 64-bit
 * variant's collision odds over the handful of configs a cache ever
 * holds are negligible. It is *not* cryptographic; nothing here defends
 * against adversarial collisions.
 */

#ifndef WSG_STATS_HASH_HH
#define WSG_STATS_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace wsg::stats
{

/** FNV-1a offset basis / prime (64-bit variant). */
inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/** FNV-1a over a byte string, continuing from @p seed. */
constexpr std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t seed = kFnv1a64Offset)
{
    std::uint64_t h = seed;
    for (char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnv1a64Prime;
    }
    return h;
}

/** Fixed-width (16 digit) lowercase hex rendering of a 64-bit hash. */
inline std::string
hashHex(std::uint64_t h)
{
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
        h >>= 4;
    }
    return out;
}

/** fnv1a64 + hashHex in one call — the config-hash spelling. */
inline std::string
fnv1a64Hex(std::string_view bytes)
{
    return hashHex(fnv1a64(bytes));
}

} // namespace wsg::stats

#endif // WSG_STATS_HASH_HH
