/**
 * @file
 * Histogram of stack distances (and other integer-valued samples).
 *
 * The Mattson profiler produces one stack-distance sample per reference;
 * this histogram accumulates them and converts the distribution into a
 * miss-count-versus-cache-size curve: an LRU cache of capacity C lines
 * misses exactly on the references whose stack distance is >= C (plus the
 * cold and coherence misses, which have infinite distance).
 */

#ifndef WSG_STATS_HISTOGRAM_HH
#define WSG_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace wsg::stats
{

/**
 * Dense histogram over non-negative integer sample values with an explicit
 * overflow ("infinite") bucket.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one sample of value @p v. */
    void
    addSample(std::uint64_t v)
    {
        if (v >= buckets_.size())
            buckets_.resize(v + 1, 0);
        ++buckets_[v];
        ++totalSamples_;
    }

    /** Record one sample with infinite value (cold/coherence miss). */
    void
    addInfiniteSample()
    {
        ++infiniteSamples_;
        ++totalSamples_;
    }

    /** @return number of samples with value exactly @p v. */
    std::uint64_t
    count(std::uint64_t v) const
    {
        return v < buckets_.size() ? buckets_[v] : 0;
    }

    /** @return number of samples whose value is >= @p v (incl. infinite). */
    std::uint64_t countAtLeast(std::uint64_t v) const;

    std::uint64_t totalSamples() const { return totalSamples_; }
    std::uint64_t infiniteSamples() const { return infiniteSamples_; }

    /** Largest finite sample value seen (0 when empty). */
    std::uint64_t maxValue() const;

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Drop all samples. */
    void clear();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t infiniteSamples_ = 0;
    std::uint64_t totalSamples_ = 0;
};

} // namespace wsg::stats

#endif // WSG_STATS_HISTOGRAM_HH
