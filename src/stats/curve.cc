#include "stats/curve.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace wsg::stats
{

void
Curve::addPoint(double x, double y)
{
    auto it = std::lower_bound(points_.begin(), points_.end(), x,
        [](const CurvePoint &p, double key) { return p.x < key; });
    if (it != points_.end() && it->x == x) {
        it->y = y;
        return;
    }
    points_.insert(it, CurvePoint{x, y});
}

double
Curve::valueAtOrBelow(double x) const
{
    if (points_.empty())
        throw std::out_of_range("Curve::valueAtOrBelow on empty curve");
    auto it = std::upper_bound(points_.begin(), points_.end(), x,
        [](double key, const CurvePoint &p) { return key < p.x; });
    if (it == points_.begin())
        return it->y;
    return std::prev(it)->y;
}

double
Curve::interpolate(double x) const
{
    if (points_.empty())
        throw std::out_of_range("Curve::interpolate on empty curve");
    if (x <= points_.front().x)
        return points_.front().y;
    if (x >= points_.back().x)
        return points_.back().y;
    auto it = std::lower_bound(points_.begin(), points_.end(), x,
        [](const CurvePoint &p, double key) { return p.x < key; });
    const CurvePoint &hi = *it;
    const CurvePoint &lo = *std::prev(it);
    double t = (x - lo.x) / (hi.x - lo.x);
    return lo.y + t * (hi.y - lo.y);
}

double
Curve::firstXBelow(double y_threshold) const
{
    for (const auto &p : points_) {
        if (p.y <= y_threshold)
            return p.x;
    }
    return -1.0;
}

double
Curve::minY() const
{
    if (points_.empty())
        throw std::out_of_range("Curve::minY on empty curve");
    double m = points_.front().y;
    for (const auto &p : points_)
        m = std::min(m, p.y);
    return m;
}

double
Curve::maxY() const
{
    if (points_.empty())
        throw std::out_of_range("Curve::maxY on empty curve");
    double m = points_.front().y;
    for (const auto &p : points_)
        m = std::max(m, p.y);
    return m;
}

double
Curve::logLogSlope() const
{
    // Ordinary least squares on (log x, log y).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::size_t n = 0;
    for (const auto &p : points_) {
        if (p.x <= 0 || p.y <= 0)
            continue;
        double lx = std::log(p.x);
        double ly = std::log(p.y);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
        ++n;
    }
    if (n < 2)
        return 0.0;
    double denom = static_cast<double>(n) * sxx - sx * sx;
    if (denom == 0.0)
        return 0.0;
    return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

void
Curve::scaleY(double s)
{
    for (auto &p : points_)
        p.y *= s;
}

} // namespace wsg::stats
