/**
 * @file
 * Machine-readable JSON emission for study artifacts.
 *
 * The figure benches historically printed human-oriented tables only;
 * this writer turns curves, working-set hierarchies, and counters into
 * stable, diffable JSON so regenerated figure data can be committed and
 * compared across machines and revisions.
 *
 * Determinism/diffability rules:
 *  - keys are emitted in the order the caller writes them (no hashing),
 *  - doubles are printed with std::to_chars shortest round-trip form,
 *    so equal values always serialize to equal bytes,
 *  - indentation is fixed two-space, arrays of numbers stay on one line.
 */

#ifndef WSG_STATS_JSON_REPORT_HH
#define WSG_STATS_JSON_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "stats/curve.hh"
#include "stats/knee.hh"

namespace wsg::stats
{

/**
 * Minimal streaming JSON writer. The caller is responsible for writing
 * a well-formed document (the writer tracks nesting and commas, and
 * asserts on key/value misuse in debug builds).
 */
class JsonWriter
{
  public:
    /** @p compact drops all inter-token whitespace, for JSON-lines
     *  records that must stay on one physical line. */
    explicit JsonWriter(std::ostream &os, bool compact = false)
        : os_(os), compact_(compact)
    {
    }

    /** Serialize a double in shortest round-trip form ("1e99"-safe). */
    static std::string formatDouble(double v);

    /** Escape and quote a JSON string. */
    static std::string quote(const std::string &s);

    // Structure.
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Write the key of the next member (inside an object). */
    void key(const std::string &name);

    // Values (as array elements or after key()).
    void value(const std::string &v);
    void value(const char *v) { value(std::string(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(int v) { value(static_cast<std::uint64_t>(v < 0 ? 0 : v)); }
    void value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    void
    member(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

  private:
    void separator();
    void newlineIndent();

    std::ostream &os_;
    bool compact_ = false;
    /** One entry per open scope: true = object (expects keys). */
    std::vector<bool> scopeIsObject_;
    /** Parallel to scopeIsObject_: element already written in scope. */
    std::vector<bool> scopeHasElement_;
    bool pendingKey_ = false;
};

/** Emit a curve as {"name": ..., "x": [...], "y": [...]}. */
void writeCurve(JsonWriter &w, const Curve &curve);

/** Emit a working-set hierarchy as an array of knee objects. */
void writeWorkingSets(JsonWriter &w,
                      const std::vector<WorkingSet> &sets);

} // namespace wsg::stats

#endif // WSG_STATS_JSON_REPORT_HH
