#include "stats/units.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wsg::stats
{

namespace
{

/** Render a double with up to one decimal, dropping a trailing ".0". */
std::string
oneDecimal(double value)
{
    char buf[64];
    if (std::abs(value - std::round(value)) < 0.05) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1f", value);
    }
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    if (bytes < 0) {
        // Bind to an lvalue: the const char* + string&& overload trips
        // GCC 12's -Wrestrict false positive (PR 105651).
        std::string positive = formatBytes(-bytes);
        return "-" + positive;
    }
    if (bytes < static_cast<double>(kKiB))
        return oneDecimal(bytes) + " B";
    if (bytes < static_cast<double>(kMiB))
        return oneDecimal(bytes / static_cast<double>(kKiB)) + " KB";
    if (bytes < static_cast<double>(kGiB))
        return oneDecimal(bytes / static_cast<double>(kMiB)) + " MB";
    if (bytes < static_cast<double>(kGiB) * 1024.0)
        return oneDecimal(bytes / static_cast<double>(kGiB)) + " GB";
    return oneDecimal(bytes / (static_cast<double>(kGiB) * 1024.0)) + " TB";
}

std::string
formatRate(double rate)
{
    char buf[64];
    if (rate == 0.0)
        return "0";
    if (std::abs(rate) >= 0.001 && std::abs(rate) < 1.0e6) {
        std::snprintf(buf, sizeof(buf), "%.3g", rate);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3e", rate);
    }
    return buf;
}

std::string
formatCount(double count)
{
    char buf[64];
    if (count < 1.0e3) {
        std::snprintf(buf, sizeof(buf), "%.0f", count);
    } else if (count < 1.0e6) {
        std::snprintf(buf, sizeof(buf), "%.3gK", count / 1.0e3);
    } else if (count < 1.0e9) {
        std::snprintf(buf, sizeof(buf), "%.3gM", count / 1.0e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3gB", count / 1.0e9);
    }
    return buf;
}

std::uint64_t
parseSize(const std::string &text)
{
    if (text.empty())
        throw std::invalid_argument("parseSize: empty size string");

    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        throw std::invalid_argument("parseSize: bad size '" + text + "'");
    }
    if (value < 0)
        throw std::invalid_argument("parseSize: negative size '" + text +
                                    "'");

    std::uint64_t multiplier = 1;
    if (pos < text.size()) {
        char suffix =
            static_cast<char>(std::toupper(static_cast<unsigned char>(
                text[pos])));
        switch (suffix) {
          case 'K':
            multiplier = kKiB;
            break;
          case 'M':
            multiplier = kMiB;
            break;
          case 'G':
            multiplier = kGiB;
            break;
          case 'B':
            multiplier = 1;
            break;
          default:
            throw std::invalid_argument("parseSize: bad suffix in '" + text +
                                        "'");
        }
        // Allow an optional trailing 'B' after K/M/G (e.g. "64KB").
        std::size_t rest = pos + 1;
        if (rest < text.size() &&
            std::toupper(static_cast<unsigned char>(text[rest])) == 'B') {
            ++rest;
        }
        if (rest != text.size())
            throw std::invalid_argument("parseSize: trailing junk in '" +
                                        text + "'");
    }
    return static_cast<std::uint64_t>(value * static_cast<double>(
        multiplier));
}

} // namespace wsg::stats
