#include "stats/json_report.hh"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace wsg::stats
{

std::string
JsonWriter::formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    assert(ec == std::errc());
    (void)ec;
    return std::string(buf, ptr);
}

std::string
JsonWriter::quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += esc;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::newlineIndent()
{
    if (compact_)
        return;
    os_ << '\n'
        << std::string(2 * scopeIsObject_.size(), ' ');
}

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (scopeIsObject_.empty())
        return; // root value
    assert(!scopeIsObject_.back() &&
           "object members need key() before a value");
    if (scopeHasElement_.back())
        os_ << (compact_ ? "," : ", ");
    scopeHasElement_.back() = true;
}

void
JsonWriter::key(const std::string &name)
{
    assert(!scopeIsObject_.empty() && scopeIsObject_.back());
    if (scopeHasElement_.back())
        os_ << ',';
    scopeHasElement_.back() = true;
    newlineIndent();
    os_ << quote(name) << (compact_ ? ":" : ": ");
    pendingKey_ = true;
}

void
JsonWriter::beginObject()
{
    if (pendingKey_) {
        pendingKey_ = false;
    } else if (!scopeIsObject_.empty() && !scopeIsObject_.back()) {
        // Array-of-object elements each start on their own line.
        if (scopeHasElement_.back())
            os_ << ',';
        scopeHasElement_.back() = true;
        newlineIndent();
    }
    os_ << '{';
    scopeIsObject_.push_back(true);
    scopeHasElement_.push_back(false);
}

void
JsonWriter::endObject()
{
    assert(!scopeIsObject_.empty() && scopeIsObject_.back());
    bool had = scopeHasElement_.back();
    scopeIsObject_.pop_back();
    scopeHasElement_.pop_back();
    if (had)
        newlineIndent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    scopeIsObject_.push_back(false);
    scopeHasElement_.push_back(false);
}

void
JsonWriter::endArray()
{
    assert(!scopeIsObject_.empty() && !scopeIsObject_.back());
    scopeIsObject_.pop_back();
    scopeHasElement_.pop_back();
    os_ << ']';
}

void
JsonWriter::value(const std::string &v)
{
    separator();
    os_ << quote(v);
}

void
JsonWriter::value(double v)
{
    separator();
    os_ << formatDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
}

void
writeCurve(JsonWriter &w, const Curve &curve)
{
    w.beginObject();
    w.member("name", curve.name());
    w.key("x");
    w.beginArray();
    for (const CurvePoint &p : curve.points())
        w.value(p.x);
    w.endArray();
    w.key("y");
    w.beginArray();
    for (const CurvePoint &p : curve.points())
        w.value(p.y);
    w.endArray();
    w.endObject();
}

void
writeWorkingSets(JsonWriter &w, const std::vector<WorkingSet> &sets)
{
    w.beginArray();
    for (const WorkingSet &ws : sets) {
        w.beginObject();
        w.member("level", static_cast<std::uint64_t>(
                              ws.level < 0 ? 0 : ws.level));
        w.member("size_bytes", ws.sizeBytes);
        w.member("core_size_bytes", ws.coreSizeBytes);
        w.member("miss_rate_before", ws.missRateBefore);
        w.member("miss_rate_after", ws.missRateAfter);
        w.endObject();
    }
    w.endArray();
}

} // namespace wsg::stats
