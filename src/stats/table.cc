#include "stats/table.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "stats/units.hh"

namespace wsg::stats
{

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size())
        throw std::invalid_argument("Table::addRow: wrong cell count for '" +
                                    _title + "'");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto renderRow = [&](const std::vector<std::string> &cells,
                         std::ostringstream &os) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << "  " << cells[i]
               << std::string(widths[i] - cells[i].size(), ' ');
        }
        os << "\n";
    };

    std::ostringstream os;
    os << _title << "\n";
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    if (!header_.empty()) {
        renderRow(header_, os);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        renderRow(row, os);
    return os.str();
}

std::string
renderSeries(const std::string &title, const std::string &x_label,
             const std::vector<Curve> &curves, bool x_is_bytes)
{
    Table table(title);
    std::vector<std::string> head{x_label};
    for (const auto &c : curves)
        head.push_back(c.name().empty() ? "series" : c.name());
    table.header(std::move(head));

    std::set<double> xs;
    for (const auto &c : curves)
        for (const auto &p : c.points())
            xs.insert(p.x);

    for (double x : xs) {
        std::vector<std::string> row;
        row.push_back(x_is_bytes ? formatBytes(x) : formatRate(x));
        for (const auto &c : curves)
            row.push_back(c.empty() ? "-" : formatRate(c.valueAtOrBelow(x)));
        table.addRow(std::move(row));
    }
    return table.render();
}

std::string
renderAsciiPlot(const Curve &curve, int width, int height)
{
    const auto &pts = curve.points();
    if (pts.size() < 2 || width < 8 || height < 4)
        return "(plot unavailable)\n";

    double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
    bool first = true;
    for (const auto &p : pts) {
        if (p.x <= 0 || p.y <= 0)
            continue;
        double lx = std::log2(p.x);
        double ly = std::log2(p.y);
        if (first) {
            xmin = xmax = lx;
            ymin = ymax = ly;
            first = false;
        } else {
            xmin = std::min(xmin, lx);
            xmax = std::max(xmax, lx);
            ymin = std::min(ymin, ly);
            ymax = std::max(ymax, ly);
        }
    }
    if (first || xmax == xmin)
        return "(plot unavailable)\n";
    if (ymax == ymin)
        ymax = ymin + 1;

    std::vector<std::string> grid(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(
                                      width), ' '));
    for (const auto &p : pts) {
        if (p.x <= 0 || p.y <= 0)
            continue;
        double lx = std::log2(p.x);
        double ly = std::log2(p.y);
        int col = static_cast<int>(std::round(
            (lx - xmin) / (xmax - xmin) * (width - 1)));
        int row = static_cast<int>(std::round(
            (ymax - ly) / (ymax - ymin) * (height - 1)));
        grid[static_cast<std::size_t>(row)]
            [static_cast<std::size_t>(col)] = '*';
    }

    std::ostringstream os;
    os << curve.name() << "  (log2 miss rate vs log2 size; y "
       << formatRate(std::exp2(ymin)) << ".." << formatRate(std::exp2(ymax))
       << ", x " << formatBytes(std::exp2(xmin)) << ".."
       << formatBytes(std::exp2(xmax)) << ")\n";
    for (const auto &line : grid)
        os << "  |" << line << "\n";
    os << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
    return os.str();
}

} // namespace wsg::stats
