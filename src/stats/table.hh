/**
 * @file
 * ASCII table and figure-series rendering.
 *
 * The bench binaries regenerate every table and figure from the paper; this
 * is the single place where those are laid out, so all reproduction output
 * looks uniform (aligned columns, a rule under the header, a caption line).
 */

#ifndef WSG_STATS_TABLE_HH
#define WSG_STATS_TABLE_HH

#include <string>
#include <vector>

#include "stats/curve.hh"

namespace wsg::stats
{

/**
 * Column-aligned ASCII table builder.
 */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title) : _title(std::move(title)) {}

    /** Set the header row. Must be called before addRow. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must have as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table to a string. */
    std::string render() const;

    const std::string &title() const { return _title; }
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string _title;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Render one or more curves as a figure-style series table: first column is
 * x (formatted as a byte size when @p x_is_bytes), one column per curve.
 * Curves may be sampled at different x values; the union of x values is
 * used and step-lookup (valueAtOrBelow) fills each column.
 */
std::string renderSeries(const std::string &title,
                         const std::string &x_label,
                         const std::vector<Curve> &curves,
                         bool x_is_bytes = true);

/**
 * Render a curve as a crude ASCII plot (log-x, log-y), useful for eyeballing
 * knees in bench output.
 */
std::string renderAsciiPlot(const Curve &curve, int width = 64,
                            int height = 16);

} // namespace wsg::stats

#endif // WSG_STATS_TABLE_HH
