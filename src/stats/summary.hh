/**
 * @file
 * Running summary statistics (count/mean/min/max/variance) via Welford's
 * algorithm. Used by the simulator for per-processor load-balance metrics
 * and by benches for timing summaries.
 */

#ifndef WSG_STATS_SUMMARY_HH
#define WSG_STATS_SUMMARY_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace wsg::stats
{

/** Accumulates samples and answers mean/min/max/stddev queries. */
class Summary
{
  public:
    /** Record one sample. */
    void
    addSample(double v)
    {
        ++count_;
        double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
        sum_ += v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return count_ ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /**
     * Load-imbalance factor: max / mean. 1.0 is perfectly balanced. Used
     * for the paper's load-balance discussions (work units per processor).
     */
    double
    imbalance() const
    {
        return (count_ && mean_ > 0.0) ? max_ / mean_ : 1.0;
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace wsg::stats

#endif // WSG_STATS_SUMMARY_HH
