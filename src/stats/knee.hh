/**
 * @file
 * Knee detection — turning a miss-rate-versus-cache-size curve into a
 * working-set hierarchy.
 *
 * The paper's methodology (Section 2.2) is to "simulate different cache
 * sizes and look for knees in the resulting performance (or miss rate)
 * versus cache size curve". A knee is a region where the miss rate falls
 * sharply as the cache grows, separating two plateaus; the cache size at
 * the end of the region is the size of a working set (lev1WS, lev2WS, ...).
 */

#ifndef WSG_STATS_KNEE_HH
#define WSG_STATS_KNEE_HH

#include <limits>
#include <string>
#include <vector>

#include "stats/curve.hh"

namespace wsg::stats
{

/** One detected working set (one knee of the curve). */
struct WorkingSet
{
    /** 1-based level within the hierarchy (lev1WS has level == 1). */
    int level = 0;
    /** Cache size (bytes) at which this working set first fits. */
    double sizeBytes = 0.0;
    /** Miss rate just before the knee (cache slightly too small). */
    double missRateBefore = 0.0;
    /** Miss rate once the working set fits. */
    double missRateAfter = 0.0;
    /**
     * Size at the *core* of the knee: the end of the single sharpest
     * step inside the drop region. When a knee's tail decays slowly
     * (e.g.\ Barnes-Hut beyond lev2WS, Section 6.2), sizeBytes marks
     * where the decay ends while coreSizeBytes marks where most of the
     * improvement happened.
     */
    double coreSizeBytes = 0.0;

    /** Multiplicative miss-rate improvement across the knee (infinity
     *  when the rate drops to zero). */
    double
    dropFactor() const
    {
        if (missRateAfter > 0.0)
            return missRateBefore / missRateAfter;
        return missRateBefore > 0.0
                   ? std::numeric_limits<double>::infinity()
                   : 1.0;
    }
};

/** Tunables for the knee detector. */
struct KneeConfig
{
    /**
     * Minimum per-sample relative drop for a sample to be considered part
     * of a knee region: y[i] < y[i-1] * (1 - minStepDrop).
     */
    double minStepDrop = 0.08;
    /**
     * Minimum total drop factor (rate before / rate after) for a merged
     * region to be reported as a working set.
     */
    double minKneeFactor = 1.4;
    /**
     * Miss rates below this absolute floor are treated as "at the
     * communication floor" and further drops are ignored.
     */
    double rateFloor = 0.0;
};

/**
 * Detect the working-set hierarchy of a (cache size, miss rate) curve.
 *
 * The curve must be sampled at increasing cache size; it is expected to be
 * (approximately) non-increasing, as produced by the stack-distance
 * profiler or the analytical models.
 *
 * @param curve The miss-rate curve (x in bytes, y miss rate).
 * @param config Detection thresholds.
 * @return Detected working sets, smallest first, levels numbered from 1.
 */
std::vector<WorkingSet> detectWorkingSets(const Curve &curve,
                                          const KneeConfig &config = {});

/** Render a working-set hierarchy as a small human-readable table. */
std::string describeWorkingSets(const std::vector<WorkingSet> &sets);

} // namespace wsg::stats

#endif // WSG_STATS_KNEE_HH
