#include "stats/histogram.hh"

#include <algorithm>

namespace wsg::stats
{

std::uint64_t
Histogram::countAtLeast(std::uint64_t v) const
{
    std::uint64_t total = infiniteSamples_;
    for (std::uint64_t i = v; i < buckets_.size(); ++i)
        total += buckets_[i];
    return total;
}

std::uint64_t
Histogram::maxValue() const
{
    for (std::uint64_t i = buckets_.size(); i > 0; --i) {
        if (buckets_[i - 1] != 0)
            return i - 1;
    }
    return 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    infiniteSamples_ += other.infiniteSamples_;
    totalSamples_ += other.totalSamples_;
}

void
Histogram::clear()
{
    buckets_.clear();
    infiniteSamples_ = 0;
    totalSamples_ = 0;
}

} // namespace wsg::stats
