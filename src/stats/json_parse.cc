#include "stats/json_parse.hh"

#include <cstdlib>

namespace wsg::stats
{

namespace
{

[[noreturn]] void
typeError(const char *wanted)
{
    throw std::runtime_error(std::string("JsonValue: not a ") + wanted);
}

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw JsonParseError(message, pos_);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("invalid literal");
        pos_ += word.size();
    }

    JsonValue
    parseValue()
    {
        if (depth_ >= kMaxDepth)
            fail("nesting too deep");
        skipWhitespace();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue::makeString(parseString());
          case 't':
            expectLiteral("true");
            return JsonValue::makeBool(true);
          case 'f':
            expectLiteral("false");
            return JsonValue::makeBool(false);
          case 'n':
            expectLiteral("null");
            return JsonValue::makeNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        ++depth_;
        expect('{');
        JsonValue::Members members;
        skipWhitespace();
        if (!consumeIf('}')) {
            while (true) {
                skipWhitespace();
                std::string key = parseString();
                skipWhitespace();
                expect(':');
                JsonValue value = parseValue();
                members.emplace_back(std::move(key), std::move(value));
                skipWhitespace();
                if (consumeIf(','))
                    continue;
                expect('}');
                break;
            }
        }
        --depth_;
        return JsonValue::makeObject(std::move(members));
    }

    JsonValue
    parseArray()
    {
        ++depth_;
        expect('[');
        std::vector<JsonValue> items;
        skipWhitespace();
        if (!consumeIf(']')) {
            while (true) {
                items.push_back(parseValue());
                skipWhitespace();
                if (consumeIf(','))
                    continue;
                expect(']');
                break;
            }
        }
        --depth_;
        return JsonValue::makeArray(std::move(items));
    }

    /** Append the UTF-8 encoding of @p cp to @p out. */
    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    std::uint32_t
    parseHex4()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = peek();
            ++pos_;
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                std::uint32_t cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: require the paired low one.
                    if (!consumeIf('\\') || !consumeIf('u'))
                        fail("unpaired surrogate");
                    std::uint32_t lo = parseHex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default: fail("invalid escape");
            }
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (consumeIf('-')) {}
        if (pos_ >= text_.size() || text_[pos_] < '0' ||
            text_[pos_] > '9')
            fail("invalid number");
        // JSON forbids leading zeros ("01"): after an initial '0' the
        // integer part is over.
        bool leading_zero = text_[pos_] == '0';
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (leading_zero && pos_ - start > (text_[start] == '-' ? 2u : 1u))
            fail("invalid number: leading zero");
        if (consumeIf('.')) {
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                fail("invalid number: missing fraction digits");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                fail("invalid number: missing exponent digits");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        std::string token(text_.substr(start, pos_ - start));
        return JsonValue::makeNumber(std::strtod(token.c_str(), nullptr));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        typeError("bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        typeError("number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        typeError("string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        typeError("array");
    return items_;
}

const JsonValue::Members &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        typeError("object");
    return members_;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return items_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        throw std::runtime_error("JsonValue: missing key '" + key + "'");
    return *v;
}

const JsonValue &
JsonValue::operator[](std::size_t i) const
{
    const auto &v = items();
    if (i >= v.size())
        throw std::runtime_error("JsonValue: array index out of range");
    return v[i];
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue out;
    out.kind_ = Kind::Number;
    out.number_ = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue out;
    out.kind_ = Kind::Array;
    out.items_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeObject(Members v)
{
    JsonValue out;
    out.kind_ = Kind::Object;
    out.members_ = std::move(v);
    return out;
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace wsg::stats
