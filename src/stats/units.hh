/**
 * @file
 * Formatting helpers for byte sizes, rates and counts used throughout the
 * working-set study output. All tables and figure series in the benches are
 * rendered through these helpers so that output stays consistent with the
 * units used in the paper (Kbytes, Mbytes, misses per FLOP, ...).
 */

#ifndef WSG_STATS_UNITS_HH
#define WSG_STATS_UNITS_HH

#include <cstdint>
#include <string>

namespace wsg::stats
{

/** Number of bytes in a Kbyte / Mbyte / Gbyte (binary, as in the paper). */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

/**
 * Format a byte count the way the paper does: "260 B", "2.2 KB", "16 MB".
 *
 * @param bytes The size to format.
 * @return Human-readable size string with at most one decimal digit.
 */
std::string formatBytes(double bytes);

/**
 * Format a rate (e.g.\ misses per FLOP or a miss ratio) compactly.
 *
 * Uses fixed notation for values >= 0.001 and scientific below that,
 * keeping three significant digits either way.
 */
std::string formatRate(double rate);

/**
 * Format a large count ("4.5 million", "64K") for narrative output.
 */
std::string formatCount(double count);

/**
 * Parse sizes like "64K", "1M", "512" into bytes. Used by example CLIs.
 *
 * @param text The size string; suffixes K/M/G (case-insensitive) are
 *             interpreted as binary multipliers.
 * @return The size in bytes.
 * @throws std::invalid_argument on malformed input.
 */
std::uint64_t parseSize(const std::string &text);

} // namespace wsg::stats

#endif // WSG_STATS_UNITS_HH
