/**
 * @file
 * Blocked dense Cholesky factorization (A = L L^T) with the same 2-D
 * scatter decomposition as BlockedLu.
 *
 * Section 3 claims the LU analysis "actually applies to a wider set of
 * applications", naming dense Cholesky explicitly. This implementation
 * lets that claim be verified empirically: the trailing update
 * A_IJ -= A_IK A_JK^T has the same two-block-column lev1WS and
 * one-block lev2WS as LU's A_IJ -= A_IK A_KJ, at roughly half the
 * communication (only the lower triangle is touched).
 */

#ifndef WSG_APPS_LU_BLOCKED_CHOLESKY_HH
#define WSG_APPS_LU_BLOCKED_CHOLESKY_HH

#include <cstdint>
#include <vector>

#include "apps/lu/blocked_lu.hh"
#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::lu
{

/** Blocked, traced, parallel-decomposed Cholesky factorization. */
class BlockedCholesky
{
  public:
    /** Uses the same configuration type as BlockedLu. */
    BlockedCholesky(const LuConfig &config,
                    trace::SharedAddressSpace &space,
                    trace::MemorySink *sink);

    /**
     * Fill with a random symmetric positive-definite matrix (untraced):
     * a random symmetric matrix made diagonally dominant.
     */
    void randomizeSpd(std::uint64_t seed);

    void set(std::uint32_t row, std::uint32_t col, double v);
    double get(std::uint32_t row, std::uint32_t col) const;
    std::vector<double> denseCopy() const;

    /** Factor the lower triangle in place: A -> L (lower, with the
     *  diagonal holding L's diagonal). */
    void factor();

    /** Relative residual ||A0 - L L^T||_F / ||A0||_F over the lower
     *  triangle, against a pre-factor dense copy. */
    double residual(const std::vector<double> &original) const;

    /** Solve A x = b using the factored L (sequential, untraced). */
    std::vector<double> solve(const std::vector<double> &b) const;

    ProcId
    ownerOf(std::uint32_t bi, std::uint32_t bj) const
    {
        return (bi % cfg_.procRows) * cfg_.procCols + (bj % cfg_.procCols);
    }

    const trace::FlopCounter &flops() const { return flops_; }
    const LuConfig &config() const { return cfg_; }

  private:
    std::size_t
    idx(std::uint32_t bi, std::uint32_t bj, std::uint32_t i,
        std::uint32_t j) const
    {
        std::size_t B = cfg_.blockSize;
        std::size_t N = cfg_.numBlocks();
        return ((static_cast<std::size_t>(bi) * N + bj) * B + j) * B + i;
    }

    void factorDiagonal(std::uint32_t K);
    void solveColumnPanel(std::uint32_t K);
    void updateTrailing(std::uint32_t K);

    LuConfig cfg_;
    trace::TracedArray<double> a_;
    trace::FlopCounter flops_;
};

} // namespace wsg::apps::lu

#endif // WSG_APPS_LU_BLOCKED_CHOLESKY_HH
