/**
 * @file
 * Blocked dense LU factorization with a 2-D scatter decomposition —
 * the paper's direct-solver workload (Section 3).
 *
 * The n x n matrix is stored as an N x N array of B x B blocks (n = N*B),
 * each block contiguous. Blocks are assigned to a procRows x procCols
 * processor grid by (I mod procRows, J mod procCols) — the 2-D scatter
 * decomposition of [Fox et al.]. Every K iteration factors the diagonal
 * block, solves the row/column-K panels, and lets the owner of each
 * trailing block A_IJ apply the rank-B update A_IJ -= A_IK * A_KJ
 * (owner-computes).
 *
 * The matrix is assumed diagonally dominant, so no pivoting is performed
 * (as in SPLASH LU). All shared-data touches go through a TracedArray, so
 * running the factorization against a Multiprocessor sink reproduces the
 * reference stream the paper's working-set analysis assumes; running with
 * a null sink gives a plain, testable factorization.
 */

#ifndef WSG_APPS_LU_BLOCKED_LU_HH
#define WSG_APPS_LU_BLOCKED_LU_HH

#include <cstdint>
#include <vector>

#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::lu
{

using trace::ProcId;

/** Configuration of a blocked LU run. */
struct LuConfig
{
    /** Matrix dimension; must be a multiple of blockSize. */
    std::uint32_t n = 128;
    /** Block size B. */
    std::uint32_t blockSize = 16;
    /** Processor grid; P = procRows * procCols. */
    std::uint32_t procRows = 2;
    std::uint32_t procCols = 2;

    std::uint32_t numProcs() const { return procRows * procCols; }
    std::uint32_t numBlocks() const { return n / blockSize; }
};

/** Blocked, traced, parallel-decomposed LU factorization. */
class BlockedLu
{
  public:
    /**
     * @param config Problem shape.
     * @param space Address space for the matrix segment.
     * @param sink Reference sink; nullptr disables tracing.
     */
    BlockedLu(const LuConfig &config, trace::SharedAddressSpace &space,
              trace::MemorySink *sink);

    /** Fill with a random diagonally dominant matrix (untraced). */
    void randomize(std::uint64_t seed);

    /** Set entry (row, col) directly (untraced). */
    void set(std::uint32_t row, std::uint32_t col, double v);
    /** Read entry (row, col) directly (untraced). */
    double get(std::uint32_t row, std::uint32_t col) const;

    /** Dense row-major copy of the current contents (untraced). */
    std::vector<double> denseCopy() const;

    /**
     * Run the factorization. Processors execute phase-by-phase (barrier
     * semantics): diagonal factor, panel solves, trailing update.
     */
    void factor();

    /**
     * Solve A x = b using the factored L and U (sequential, untraced);
     * used by the radar-cross-section example and the tests.
     */
    std::vector<double> solve(const std::vector<double> &b) const;

    /**
     * Relative residual ||A0 - L U||_F / ||A0||_F against a dense
     * row-major copy taken before factor().
     */
    double residual(const std::vector<double> &original) const;

    /** Owner of block (I, J) in the scatter decomposition. */
    ProcId
    ownerOf(std::uint32_t bi, std::uint32_t bj) const
    {
        return (bi % cfg_.procRows) * cfg_.procCols + (bj % cfg_.procCols);
    }

    const trace::FlopCounter &flops() const { return flops_; }
    const LuConfig &config() const { return cfg_; }

  private:
    /** Flat index of element (i, j) of block (bi, bj); blocks contiguous,
     *  column-major within a block so that "a column of a block" is a
     *  contiguous run (the paper's lev1WS). */
    std::size_t
    idx(std::uint32_t bi, std::uint32_t bj, std::uint32_t i,
        std::uint32_t j) const
    {
        std::size_t B = cfg_.blockSize;
        std::size_t N = cfg_.numBlocks();
        return ((static_cast<std::size_t>(bi) * N + bj) * B + j) * B + i;
    }

    void factorDiagonal(std::uint32_t K);
    void solveColumnPanel(std::uint32_t K);
    void solveRowPanel(std::uint32_t K);
    void updateTrailing(std::uint32_t K);

    LuConfig cfg_;
    trace::TracedArray<double> a_;
    trace::FlopCounter flops_;
};

} // namespace wsg::apps::lu

#endif // WSG_APPS_LU_BLOCKED_LU_HH
