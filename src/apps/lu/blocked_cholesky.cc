#include "apps/lu/blocked_cholesky.hh"

#include <cassert>
#include <cmath>
#include <random>
#include <stdexcept>

namespace wsg::apps::lu
{

BlockedCholesky::BlockedCholesky(const LuConfig &config,
                                 trace::SharedAddressSpace &space,
                                 trace::MemorySink *sink)
    : cfg_(config),
      a_(space, "chol.matrix",
         static_cast<std::size_t>(config.n) * config.n, sink),
      flops_(config.numProcs())
{
    if (cfg_.n % cfg_.blockSize != 0)
        throw std::invalid_argument(
            "BlockedCholesky: n must be a multiple of B");
    if (cfg_.procRows == 0 || cfg_.procCols == 0)
        throw std::invalid_argument(
            "BlockedCholesky: empty processor grid");
}

void
BlockedCholesky::randomizeSpd(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::uint32_t r = 0; r < cfg_.n; ++r) {
        for (std::uint32_t c = 0; c <= r; ++c) {
            double v = dist(rng);
            set(r, c, v);
            set(c, r, v);
        }
        set(r, r, std::abs(get(r, r)) + 2.0 * cfg_.n);
    }
}

void
BlockedCholesky::set(std::uint32_t row, std::uint32_t col, double v)
{
    std::uint32_t B = cfg_.blockSize;
    a_.raw(idx(row / B, col / B, row % B, col % B)) = v;
}

double
BlockedCholesky::get(std::uint32_t row, std::uint32_t col) const
{
    std::uint32_t B = cfg_.blockSize;
    return a_.raw(idx(row / B, col / B, row % B, col % B));
}

std::vector<double>
BlockedCholesky::denseCopy() const
{
    std::vector<double> out(static_cast<std::size_t>(cfg_.n) * cfg_.n);
    for (std::uint32_t r = 0; r < cfg_.n; ++r)
        for (std::uint32_t c = 0; c < cfg_.n; ++c)
            out[static_cast<std::size_t>(r) * cfg_.n + c] = get(r, c);
    return out;
}

void
BlockedCholesky::factorDiagonal(std::uint32_t K)
{
    std::uint32_t B = cfg_.blockSize;
    ProcId p = ownerOf(K, K);
    for (std::uint32_t k = 0; k < B; ++k) {
        double akk = a_.read(p, idx(K, K, k, k));
        double lkk = std::sqrt(akk);
        a_.write(p, idx(K, K, k, k), lkk);
        flops_.add(p, 1);
        for (std::uint32_t i = k + 1; i < B; ++i) {
            a_.update(p, idx(K, K, i, k), [&](double &v) { v /= lkk; });
            flops_.add(p, 1);
        }
        for (std::uint32_t j = k + 1; j < B; ++j) {
            double ljk = a_.read(p, idx(K, K, j, k));
            for (std::uint32_t i = j; i < B; ++i) {
                double lik = a_.read(p, idx(K, K, i, k));
                a_.update(p, idx(K, K, i, j),
                          [&](double &v) { v -= lik * ljk; });
                flops_.add(p, 2);
            }
        }
    }
}

void
BlockedCholesky::solveColumnPanel(std::uint32_t K)
{
    // A_IK <- A_IK * L_KK^{-T} for every I > K.
    std::uint32_t B = cfg_.blockSize;
    std::uint32_t N = cfg_.numBlocks();
    for (ProcId p = 0; p < cfg_.numProcs(); ++p) {
        for (std::uint32_t I = K + 1; I < N; ++I) {
            if (ownerOf(I, K) != p)
                continue;
            for (std::uint32_t j = 0; j < B; ++j) {
                for (std::uint32_t k = 0; k < j; ++k) {
                    double ljk = a_.read(p, idx(K, K, j, k));
                    for (std::uint32_t i = 0; i < B; ++i) {
                        double xik = a_.read(p, idx(I, K, i, k));
                        a_.update(p, idx(I, K, i, j),
                                  [&](double &v) { v -= xik * ljk; });
                        flops_.add(p, 2);
                    }
                }
                double ljj = a_.read(p, idx(K, K, j, j));
                for (std::uint32_t i = 0; i < B; ++i) {
                    a_.update(p, idx(I, K, i, j),
                              [&](double &v) { v /= ljj; });
                    flops_.add(p, 1);
                }
            }
        }
    }
}

void
BlockedCholesky::updateTrailing(std::uint32_t K)
{
    // A_IJ -= A_IK * A_JK^T for K < J <= I (lower triangle only),
    // owner-computes, jki order as in BlockedLu.
    std::uint32_t B = cfg_.blockSize;
    std::uint32_t N = cfg_.numBlocks();
    for (ProcId p = 0; p < cfg_.numProcs(); ++p) {
        for (std::uint32_t J = K + 1; J < N; ++J) {
            for (std::uint32_t I = J; I < N; ++I) {
                if (ownerOf(I, J) != p)
                    continue;
                for (std::uint32_t j = 0; j < B; ++j) {
                    for (std::uint32_t k = 0; k < B; ++k) {
                        double ajk = a_.read(p, idx(J, K, j, k));
                        for (std::uint32_t i = 0; i < B; ++i) {
                            double aik = a_.read(p, idx(I, K, i, k));
                            a_.update(p, idx(I, J, i, j),
                                      [&](double &v) { v -= aik * ajk; });
                            flops_.add(p, 2);
                        }
                    }
                }
            }
        }
    }
}

void
BlockedCholesky::factor()
{
    // Barrier-separated phases, as in BlockedLu::factor.
    trace::MemorySink *sink = a_.sink();
    std::uint32_t N = cfg_.numBlocks();
    for (std::uint32_t K = 0; K < N; ++K) {
        factorDiagonal(K);
        if (sink)
            sink->barrier();
        solveColumnPanel(K);
        if (sink)
            sink->barrier();
        updateTrailing(K);
        if (sink)
            sink->barrier();
    }
}

double
BlockedCholesky::residual(const std::vector<double> &original) const
{
    // Compare A0 with L L^T over the lower triangle (the strict upper
    // triangle of the working matrix is stale after factor()).
    double num = 0.0, den = 0.0;
    for (std::uint32_t i = 0; i < cfg_.n; ++i) {
        for (std::uint32_t j = 0; j <= i; ++j) {
            double llt = 0.0;
            for (std::uint32_t k = 0; k <= j; ++k)
                llt += get(i, k) * get(j, k);
            double a0 = original[static_cast<std::size_t>(i) * cfg_.n + j];
            num += (a0 - llt) * (a0 - llt);
            den += a0 * a0;
        }
    }
    return std::sqrt(num / den);
}

std::vector<double>
BlockedCholesky::solve(const std::vector<double> &b) const
{
    assert(b.size() == cfg_.n);
    // L y = b.
    std::vector<double> y(cfg_.n);
    for (std::uint32_t i = 0; i < cfg_.n; ++i) {
        double s = b[i];
        for (std::uint32_t k = 0; k < i; ++k)
            s -= get(i, k) * y[k];
        y[i] = s / get(i, i);
    }
    // L^T x = y.
    std::vector<double> x(cfg_.n);
    for (std::uint32_t ii = cfg_.n; ii > 0; --ii) {
        std::uint32_t i = ii - 1;
        double s = y[i];
        for (std::uint32_t k = i + 1; k < cfg_.n; ++k)
            s -= get(k, i) * x[k];
        x[i] = s / get(i, i);
    }
    return x;
}

} // namespace wsg::apps::lu
