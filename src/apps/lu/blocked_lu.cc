#include "apps/lu/blocked_lu.hh"

#include <cassert>
#include <cmath>
#include <random>
#include <stdexcept>

namespace wsg::apps::lu
{

BlockedLu::BlockedLu(const LuConfig &config,
                     trace::SharedAddressSpace &space,
                     trace::MemorySink *sink)
    : cfg_(config),
      a_(space, "lu.matrix",
         static_cast<std::size_t>(config.n) * config.n, sink),
      flops_(config.numProcs())
{
    if (cfg_.n % cfg_.blockSize != 0)
        throw std::invalid_argument("BlockedLu: n must be a multiple of B");
    if (cfg_.procRows == 0 || cfg_.procCols == 0)
        throw std::invalid_argument("BlockedLu: empty processor grid");
}

void
BlockedLu::randomize(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::uint32_t r = 0; r < cfg_.n; ++r) {
        for (std::uint32_t c = 0; c < cfg_.n; ++c)
            set(r, c, dist(rng));
        // Diagonal dominance makes pivot-free factorization stable.
        set(r, r, get(r, r) + 2.0 * cfg_.n);
    }
}

void
BlockedLu::set(std::uint32_t row, std::uint32_t col, double v)
{
    std::uint32_t B = cfg_.blockSize;
    a_.raw(idx(row / B, col / B, row % B, col % B)) = v;
}

double
BlockedLu::get(std::uint32_t row, std::uint32_t col) const
{
    std::uint32_t B = cfg_.blockSize;
    return a_.raw(idx(row / B, col / B, row % B, col % B));
}

std::vector<double>
BlockedLu::denseCopy() const
{
    std::vector<double> out(static_cast<std::size_t>(cfg_.n) * cfg_.n);
    for (std::uint32_t r = 0; r < cfg_.n; ++r)
        for (std::uint32_t c = 0; c < cfg_.n; ++c)
            out[static_cast<std::size_t>(r) * cfg_.n + c] = get(r, c);
    return out;
}

void
BlockedLu::factorDiagonal(std::uint32_t K)
{
    std::uint32_t B = cfg_.blockSize;
    ProcId p = ownerOf(K, K);
    for (std::uint32_t k = 0; k < B; ++k) {
        double pivot = a_.read(p, idx(K, K, k, k));
        for (std::uint32_t i = k + 1; i < B; ++i) {
            a_.update(p, idx(K, K, i, k), [&](double &v) { v /= pivot; });
            flops_.add(p, 1);
        }
        for (std::uint32_t j = k + 1; j < B; ++j) {
            double akj = a_.read(p, idx(K, K, k, j));
            for (std::uint32_t i = k + 1; i < B; ++i) {
                double aik = a_.read(p, idx(K, K, i, k));
                a_.update(p, idx(K, K, i, j),
                          [&](double &v) { v -= aik * akj; });
                flops_.add(p, 2);
            }
        }
    }
}

void
BlockedLu::solveColumnPanel(std::uint32_t K)
{
    // A_IK <- A_IK * U_KK^{-1} for every I > K, computed by the owner of
    // A_IK (reads of the remote diagonal block are communication).
    std::uint32_t B = cfg_.blockSize;
    std::uint32_t N = cfg_.numBlocks();
    for (ProcId p = 0; p < cfg_.numProcs(); ++p) {
        for (std::uint32_t I = K + 1; I < N; ++I) {
            if (ownerOf(I, K) != p)
                continue;
            for (std::uint32_t j = 0; j < B; ++j) {
                for (std::uint32_t k = 0; k < j; ++k) {
                    double ukj = a_.read(p, idx(K, K, k, j));
                    for (std::uint32_t i = 0; i < B; ++i) {
                        double xik = a_.read(p, idx(I, K, i, k));
                        a_.update(p, idx(I, K, i, j),
                                  [&](double &v) { v -= xik * ukj; });
                        flops_.add(p, 2);
                    }
                }
                double ujj = a_.read(p, idx(K, K, j, j));
                for (std::uint32_t i = 0; i < B; ++i) {
                    a_.update(p, idx(I, K, i, j),
                              [&](double &v) { v /= ujj; });
                    flops_.add(p, 1);
                }
            }
        }
    }
}

void
BlockedLu::solveRowPanel(std::uint32_t K)
{
    // A_KJ <- L_KK^{-1} A_KJ for every J > K.
    std::uint32_t B = cfg_.blockSize;
    std::uint32_t N = cfg_.numBlocks();
    for (ProcId p = 0; p < cfg_.numProcs(); ++p) {
        for (std::uint32_t J = K + 1; J < N; ++J) {
            if (ownerOf(K, J) != p)
                continue;
            for (std::uint32_t j = 0; j < B; ++j) {
                for (std::uint32_t k = 0; k < B; ++k) {
                    double ukj = a_.read(p, idx(K, J, k, j));
                    for (std::uint32_t i = k + 1; i < B; ++i) {
                        double lik = a_.read(p, idx(K, K, i, k));
                        a_.update(p, idx(K, J, i, j),
                                  [&](double &v) { v -= lik * ukj; });
                        flops_.add(p, 2);
                    }
                }
            }
        }
    }
}

void
BlockedLu::updateTrailing(std::uint32_t K)
{
    // A_IJ -= A_IK * A_KJ, owner-computes, jki loop order so that the
    // active data is two block columns (the paper's lev1WS).
    std::uint32_t B = cfg_.blockSize;
    std::uint32_t N = cfg_.numBlocks();
    for (ProcId p = 0; p < cfg_.numProcs(); ++p) {
        for (std::uint32_t J = K + 1; J < N; ++J) {
            for (std::uint32_t I = K + 1; I < N; ++I) {
                if (ownerOf(I, J) != p)
                    continue;
                for (std::uint32_t j = 0; j < B; ++j) {
                    for (std::uint32_t k = 0; k < B; ++k) {
                        double akj = a_.read(p, idx(K, J, k, j));
                        for (std::uint32_t i = 0; i < B; ++i) {
                            double aik = a_.read(p, idx(I, K, i, k));
                            a_.update(p, idx(I, J, i, j),
                                      [&](double &v) { v -= aik * akj; });
                            flops_.add(p, 2);
                        }
                    }
                }
            }
        }
    }
}

void
BlockedLu::factor()
{
    // Each sub-step is a parallel phase separated by global barriers (as
    // in SPLASH LU); the annotations let a happens-before check prove
    // every cross-processor block dependence is barrier-ordered.
    trace::MemorySink *sink = a_.sink();
    std::uint32_t N = cfg_.numBlocks();
    for (std::uint32_t K = 0; K < N; ++K) {
        factorDiagonal(K);
        if (sink)
            sink->barrier();
        solveColumnPanel(K);
        if (sink)
            sink->barrier();
        solveRowPanel(K);
        if (sink)
            sink->barrier();
        updateTrailing(K);
        if (sink)
            sink->barrier();
    }
}

std::vector<double>
BlockedLu::solve(const std::vector<double> &b) const
{
    assert(b.size() == cfg_.n);
    std::vector<double> y(cfg_.n);
    // Forward solve L y = b (unit diagonal).
    for (std::uint32_t i = 0; i < cfg_.n; ++i) {
        double s = b[i];
        for (std::uint32_t k = 0; k < i; ++k)
            s -= get(i, k) * y[k];
        y[i] = s;
    }
    // Back solve U x = y.
    std::vector<double> x(cfg_.n);
    for (std::uint32_t ii = cfg_.n; ii > 0; --ii) {
        std::uint32_t i = ii - 1;
        double s = y[i];
        for (std::uint32_t k = i + 1; k < cfg_.n; ++k)
            s -= get(i, k) * x[k];
        x[i] = s / get(i, i);
    }
    return x;
}

double
BlockedLu::residual(const std::vector<double> &original) const
{
    double num = 0.0;
    double den = 0.0;
    for (std::uint32_t i = 0; i < cfg_.n; ++i) {
        for (std::uint32_t j = 0; j < cfg_.n; ++j) {
            double lu = 0.0;
            std::uint32_t kmax = std::min(i, j + 1);
            for (std::uint32_t k = 0; k < kmax; ++k)
                lu += get(i, k) * get(k, j); // L strictly-lower part
            lu += (i <= j) ? get(i, j) : 0.0; // unit-diagonal L times U
            // For i <= j the k==i term is 1 * U(i,j), already added above.
            double a0 = original[static_cast<std::size_t>(i) * cfg_.n + j];
            num += (a0 - lu) * (a0 - lu);
            den += a0 * a0;
        }
    }
    return std::sqrt(num / den);
}

} // namespace wsg::apps::lu
