/**
 * @file
 * Parallel ray-cast volume renderer (Section 7).
 *
 * For every frame, rays are cast orthographically from a view direction
 * that rotates between frames. Each processor owns a contiguous
 * rectangular block of image pixels (the partitioning the paper's lev2WS
 * relies on: successive rays pass through adjacent pixels and share
 * voxels), marches its rays front-to-back with trilinear resampling,
 * octree-guided space skipping and early termination at an opacity
 * threshold, and steals rays from other processors once its own block is
 * done.
 */

#ifndef WSG_APPS_VOLREND_RENDERER_HH
#define WSG_APPS_VOLREND_RENDERER_HH

#include <cstdint>
#include <vector>

#include "apps/volrend/volume.hh"
#include "trace/flop_counter.hh"

namespace wsg::apps::volrend
{

/** Configuration of a rendering run. */
struct RenderConfig
{
    std::uint32_t imageWidth = 64;
    std::uint32_t imageHeight = 64;
    std::uint32_t numProcs = 4;
    /** View-angle change per frame, degrees (gradual rotation). */
    double degreesPerFrame = 5.0;
    /** Distance between resampling points along a ray, voxel units. */
    double sampleStep = 1.0;
    /** Accumulated opacity at which a ray terminates early. */
    double opacityCutoff = 0.95;
    /** Density below which space is considered transparent. */
    std::uint16_t densityFloor = 20;
    /** Rays handed over per steal. */
    std::uint32_t stealChunk = 8;
    /** Use the min-max octree to skip transparent space (ablation
     *  switch: the paper's renderer relies on this, Section 7.1). */
    bool useOctree = true;
    /** Perspective projection (true camera) instead of orthographic. */
    bool perspective = false;
    /** Vertical field of view for the perspective camera, degrees. */
    double fovDegrees = 40.0;
};

/** Per-frame statistics. */
struct FrameStats
{
    std::uint64_t raysCast = 0;
    std::uint64_t samplesTaken = 0;
    std::uint64_t skips = 0;
    std::uint64_t earlyTerminations = 0;
    std::uint64_t raysStolen = 0;
    /** Rays processed by each processor (own + stolen). */
    std::vector<std::uint64_t> raysPerProc;
};

/** The traced parallel renderer. */
class Renderer
{
  public:
    Renderer(const RenderConfig &config, Volume &volume,
             trace::SharedAddressSpace &space, trace::MemorySink *sink);

    /**
     * Render the next frame (advances the rotation angle). The image is
     * written into the traced image plane and also returned.
     */
    FrameStats renderFrame();

    /** Current view angle in degrees. */
    double viewAngleDeg() const { return angleDeg_; }

    /** Grey value of pixel (u, v) from the last frame, in [0, 1]. */
    double pixel(std::uint32_t u, std::uint32_t v) const;

    /** Write the last frame as a binary PGM file. */
    void writePgm(const std::string &path) const;

    const RenderConfig &config() const { return cfg_; }
    const trace::FlopCounter &flops() const { return flops_; }

    /** Owner of pixel (u, v) in the static block partition. */
    ProcId pixelOwner(std::uint32_t u, std::uint32_t v) const;

  private:
    struct Basis
    {
        double dir[3];
        double right[3];
        double up[3];
    };

    Basis viewBasis() const;

    /** March one ray; returns the composited grey value. */
    double castRay(ProcId p, std::uint32_t u, std::uint32_t v,
                   const Basis &basis, FrameStats &stats);

    RenderConfig cfg_;
    Volume &vol_;
    trace::TracedArray<double> image_;
    trace::FlopCounter flops_;
    double angleDeg_ = 0.0;
    /** Processor grid over the image (procU x procV blocks). */
    std::uint32_t procU_ = 1;
    std::uint32_t procV_ = 1;
};

} // namespace wsg::apps::volrend

#endif // WSG_APPS_VOLREND_RENDERER_HH
