#include "apps/volrend/volume.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wsg::apps::volrend
{

Volume::Volume(const VolumeDims &dims, trace::SharedAddressSpace &space,
               trace::MemorySink *sink)
    : dims_(dims), voxels_(space, "vol.voxels", dims.count(), sink),
      space_(&space), sink_(sink)
{}

void
Volume::setVoxel(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                 std::uint16_t density)
{
    voxels_.raw(vidx(x, y, z)) = density;
}

std::uint16_t
Volume::voxelAt(std::int64_t x, std::int64_t y, std::int64_t z) const
{
    if (x < 0 || y < 0 || z < 0 ||
        x >= static_cast<std::int64_t>(dims_.nx) ||
        y >= static_cast<std::int64_t>(dims_.ny) ||
        z >= static_cast<std::int64_t>(dims_.nz)) {
        return 0;
    }
    return voxels_.raw(vidx(static_cast<std::uint32_t>(x),
                            static_cast<std::uint32_t>(y),
                            static_cast<std::uint32_t>(z)));
}

std::uint16_t
Volume::readVoxel(ProcId p, std::int64_t x, std::int64_t y,
                  std::int64_t z) const
{
    if (x < 0 || y < 0 || z < 0 ||
        x >= static_cast<std::int64_t>(dims_.nx) ||
        y >= static_cast<std::int64_t>(dims_.ny) ||
        z >= static_cast<std::int64_t>(dims_.nz)) {
        return 0;
    }
    return voxels_.read(p, vidx(static_cast<std::uint32_t>(x),
                                static_cast<std::uint32_t>(y),
                                static_cast<std::uint32_t>(z)));
}

void
Volume::buildHeadPhantom()
{
    // Nested ellipsoids centered in the volume, semi-axes as fractions of
    // the half-dimensions: skin (soft tissue), skull (bone, dense),
    // brain (medium), two ventricles (fluid, light). Densities roughly
    // follow CT ranges scaled to [0, 255].
    double cx = dims_.nx / 2.0, cy = dims_.ny / 2.0, cz = dims_.nz / 2.0;
    double rx = dims_.nx / 2.0, ry = dims_.ny / 2.0, rz = dims_.nz / 2.0;

    auto inEll = [](double x, double y, double z, double ax, double ay,
                    double az) {
        return (x * x) / (ax * ax) + (y * y) / (ay * ay) +
                   (z * z) / (az * az) <=
               1.0;
    };

    for (std::uint32_t z = 0; z < dims_.nz; ++z) {
        for (std::uint32_t y = 0; y < dims_.ny; ++y) {
            for (std::uint32_t x = 0; x < dims_.nx; ++x) {
                double dx = x - cx, dy = y - cy, dz = z - cz;
                std::uint16_t d = 0;
                if (inEll(dx, dy, dz, 0.90 * rx, 0.90 * ry, 0.90 * rz))
                    d = 40; // skin / soft tissue
                if (inEll(dx, dy, dz, 0.82 * rx, 0.82 * ry, 0.82 * rz))
                    d = 230; // skull shell
                if (inEll(dx, dy, dz, 0.72 * rx, 0.72 * ry, 0.72 * rz))
                    d = 100; // brain
                // Ventricles: two small off-center ellipsoids.
                if (inEll(dx - 0.18 * rx, dy, dz - 0.05 * rz, 0.16 * rx,
                          0.28 * ry, 0.20 * rz) ||
                    inEll(dx + 0.18 * rx, dy, dz - 0.05 * rz, 0.16 * rx,
                          0.28 * ry, 0.20 * rz)) {
                    d = 25;
                }
                voxels_.raw(vidx(x, y, z)) = d;
            }
        }
    }
}

void
Volume::buildOctree()
{
    levels_.clear();

    auto ceilDiv = [](std::uint32_t a, std::uint32_t b) {
        return (a + b - 1) / b;
    };

    // Level 0 from the voxels.
    Level lev;
    lev.blockSide = kLeafBlock;
    lev.bx = ceilDiv(dims_.nx, kLeafBlock);
    lev.by = ceilDiv(dims_.ny, kLeafBlock);
    lev.bz = ceilDiv(dims_.nz, kLeafBlock);
    lev.nodes.assign(static_cast<std::size_t>(lev.bx) * lev.by * lev.bz,
                     Node{65535, 0});
    for (std::uint32_t z = 0; z < dims_.nz; ++z) {
        for (std::uint32_t y = 0; y < dims_.ny; ++y) {
            for (std::uint32_t x = 0; x < dims_.nx; ++x) {
                std::uint16_t d = voxels_.raw(vidx(x, y, z));
                std::size_t bi = (static_cast<std::size_t>(z / kLeafBlock) *
                                      lev.by +
                                  y / kLeafBlock) *
                                     lev.bx +
                                 x / kLeafBlock;
                lev.nodes[bi].lo = std::min(lev.nodes[bi].lo, d);
                lev.nodes[bi].hi = std::max(lev.nodes[bi].hi, d);
            }
        }
    }
    lev.base = space_->allocate("vol.octree.l0",
                                lev.nodes.size() * kNodeBytes);
    levels_.push_back(std::move(lev));

    // Higher levels by 2x2x2 reduction.
    while (levels_.back().bx > 1 || levels_.back().by > 1 ||
           levels_.back().bz > 1) {
        const Level &prev = levels_.back();
        Level up;
        up.blockSide = prev.blockSide * 2;
        up.bx = ceilDiv(prev.bx, 2);
        up.by = ceilDiv(prev.by, 2);
        up.bz = ceilDiv(prev.bz, 2);
        up.nodes.assign(static_cast<std::size_t>(up.bx) * up.by * up.bz,
                        Node{65535, 0});
        for (std::uint32_t z = 0; z < prev.bz; ++z) {
            for (std::uint32_t y = 0; y < prev.by; ++y) {
                for (std::uint32_t x = 0; x < prev.bx; ++x) {
                    const Node &n =
                        prev.nodes[(static_cast<std::size_t>(z) * prev.by +
                                    y) *
                                       prev.bx +
                                   x];
                    Node &u = up.nodes[(static_cast<std::size_t>(z / 2) *
                                            up.by +
                                        y / 2) *
                                           up.bx +
                                       x / 2];
                    u.lo = std::min(u.lo, n.lo);
                    u.hi = std::max(u.hi, n.hi);
                }
            }
        }
        up.base = space_->allocate(
            "vol.octree.l" + std::to_string(levels_.size()),
            up.nodes.size() * kNodeBytes);
        levels_.push_back(std::move(up));
    }
}

double
Volume::sample(ProcId p, double x, double y, double z) const
{
    double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
    auto x0 = static_cast<std::int64_t>(fx);
    auto y0 = static_cast<std::int64_t>(fy);
    auto z0 = static_cast<std::int64_t>(fz);
    double tx = x - fx, ty = y - fy, tz = z - fz;

    double c[2][2][2];
    for (int dz = 0; dz < 2; ++dz)
        for (int dy = 0; dy < 2; ++dy)
            for (int dx = 0; dx < 2; ++dx)
                c[dz][dy][dx] = readVoxel(p, x0 + dx, y0 + dy, z0 + dz);

    auto lerp = [](double a, double b, double t) {
        return a + (b - a) * t;
    };
    double c00 = lerp(c[0][0][0], c[0][0][1], tx);
    double c01 = lerp(c[0][1][0], c[0][1][1], tx);
    double c10 = lerp(c[1][0][0], c[1][0][1], tx);
    double c11 = lerp(c[1][1][0], c[1][1][1], tx);
    double c0 = lerp(c00, c01, ty);
    double c1 = lerp(c10, c11, ty);
    return lerp(c0, c1, tz);
}

double
Volume::skipDistance(ProcId p, double x, double y, double z,
                     std::uint16_t min_density) const
{
    if (levels_.empty())
        return 0.0;
    if (x < 0 || y < 0 || z < 0 || x >= dims_.nx || y >= dims_.ny ||
        z >= dims_.nz) {
        return 0.0; // outside: caller handles volume entry/exit
    }

    auto ix = static_cast<std::uint32_t>(x);
    auto iy = static_cast<std::uint32_t>(y);
    auto iz = static_cast<std::uint32_t>(z);

    // Walk from the root down; the deepest node that is still entirely
    // transparent gives the largest safe skip.
    for (std::size_t li = levels_.size(); li-- > 0;) {
        const Level &lev = levels_[li];
        std::uint32_t bx = ix / lev.blockSide;
        std::uint32_t by = iy / lev.blockSide;
        std::uint32_t bz = iz / lev.blockSide;
        std::size_t ni =
            (static_cast<std::size_t>(bz) * lev.by + by) * lev.bx + bx;
        if (sink_) {
            sink_->read(p,
                        lev.base + static_cast<Addr>(ni) * kNodeBytes,
                        kNodeBytes);
        }
        if (lev.nodes[ni].hi < min_density)
            return static_cast<double>(lev.blockSide);
    }
    return 0.0;
}

std::pair<std::uint16_t, std::uint16_t>
Volume::nodeMinMax(std::uint32_t level, std::uint32_t bx,
                   std::uint32_t by, std::uint32_t bz) const
{
    const Level &lev = levels_.at(level);
    const Node &n =
        lev.nodes[(static_cast<std::size_t>(bz) * lev.by + by) * lev.bx +
                  bx];
    return {n.lo, n.hi};
}

std::uint16_t
Volume::maxDensity() const
{
    std::uint16_t m = 0;
    for (std::uint64_t i = 0; i < dims_.count(); ++i)
        m = std::max(m, voxels_.raw(i));
    return m;
}

} // namespace wsg::apps::volrend
