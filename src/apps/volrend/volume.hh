/**
 * @file
 * Voxel volume with a min-max octree — the renderer's data substrate.
 *
 * The paper renders a 256x256x113 CT head; that dataset is proprietary,
 * so buildHeadPhantom() synthesizes a comparable volume from nested
 * ellipsoid shells (skin, skull, brain, ventricles). What the working-set
 * study measures is ray-coherent voxel reuse and octree-guided space
 * skipping, both of which the phantom exercises identically: it has an
 * empty exterior, a thin high-density shell, and structured interior.
 *
 * Voxels are 2-byte density samples (the paper: "two bytes of data are
 * read per voxel"); the octree stores per-node min/max density so rays
 * can skip transparent space hierarchically.
 */

#ifndef WSG_APPS_VOLREND_VOLUME_HH
#define WSG_APPS_VOLREND_VOLUME_HH

#include <cstdint>
#include <vector>

#include "trace/address_space.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::volrend
{

using trace::Addr;
using trace::ProcId;

/** Dimensions of a voxel volume. */
struct VolumeDims
{
    std::uint32_t nx = 64;
    std::uint32_t ny = 64;
    std::uint32_t nz = 64;

    std::uint64_t
    count() const
    {
        return static_cast<std::uint64_t>(nx) * ny * nz;
    }
};

/**
 * Traced voxel volume plus min-max octree.
 *
 * Octree level 0 nodes cover kLeafBlock^3 voxels; each higher level
 * halves the resolution. Node records are 8 bytes in the simulated
 * address space (min, max, padding).
 */
class Volume
{
  public:
    /** Voxels covered per axis by a level-0 octree node. */
    static constexpr std::uint32_t kLeafBlock = 4;
    /** Simulated bytes per octree node record. */
    static constexpr std::uint32_t kNodeBytes = 8;

    Volume(const VolumeDims &dims, trace::SharedAddressSpace &space,
           trace::MemorySink *sink);

    /** Fill with the synthetic head phantom (untraced). */
    void buildHeadPhantom();

    /** Set one voxel density (untraced; for tests). */
    void setVoxel(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                  std::uint16_t density);

    /** Rebuild the min-max octree from the voxel data (untraced). */
    void buildOctree();

    /** Untraced voxel fetch (0 outside the volume). */
    std::uint16_t voxelAt(std::int64_t x, std::int64_t y,
                          std::int64_t z) const;

    /** Traced voxel fetch by processor @p p. */
    std::uint16_t readVoxel(ProcId p, std::int64_t x, std::int64_t y,
                            std::int64_t z) const;

    /**
     * Traced trilinear density interpolation at a continuous position
     * (voxel coordinates). Reads the 8 surrounding voxels.
     */
    double sample(ProcId p, double x, double y, double z) const;

    /**
     * Hierarchically test whether the region around (x, y, z) can be
     * skipped: walks octree levels top-down (traced node reads) and
     * returns the side length (in voxels) of the largest node whose max
     * density is below @p min_density, or 0 if the location is
     * interesting.
     */
    double skipDistance(ProcId p, double x, double y, double z,
                        std::uint16_t min_density) const;

    /** Node (min, max) at a level — untraced, for tests. */
    std::pair<std::uint16_t, std::uint16_t>
    nodeMinMax(std::uint32_t level, std::uint32_t bx, std::uint32_t by,
               std::uint32_t bz) const;

    std::uint32_t numLevels() const
    {
        return static_cast<std::uint32_t>(levels_.size());
    }

    const VolumeDims &dims() const { return dims_; }

    /** Max density present in the volume. */
    std::uint16_t maxDensity() const;

  private:
    struct Node
    {
        std::uint16_t lo = 0;
        std::uint16_t hi = 0;
    };

    /** One octree level: grid of nodes plus its simulated base address. */
    struct Level
    {
        std::uint32_t bx = 0, by = 0, bz = 0; // node-grid dims
        std::uint32_t blockSide = 0;          // voxels per node per axis
        std::vector<Node> nodes;
        Addr base = 0;
    };

    std::uint64_t
    vidx(std::uint32_t x, std::uint32_t y, std::uint32_t z) const
    {
        return (static_cast<std::uint64_t>(z) * dims_.ny + y) * dims_.nx +
               x;
    }

    VolumeDims dims_;
    trace::TracedArray<std::uint16_t> voxels_;
    std::vector<Level> levels_;
    trace::SharedAddressSpace *space_;
    trace::MemorySink *sink_;
};

} // namespace wsg::apps::volrend

#endif // WSG_APPS_VOLREND_VOLUME_HH
