#include "apps/volrend/renderer.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <fstream>
#include <limits>
#include <numbers>

namespace wsg::apps::volrend
{

namespace
{

/** Opacity assigned to a fully dense sample. */
constexpr double kOpacityScale = 0.35;

/** FLOP charges. */
constexpr std::uint64_t kFlopsPerSample = 30;
constexpr std::uint64_t kFlopsPerRaySetup = 20;

} // namespace

Renderer::Renderer(const RenderConfig &config, Volume &volume,
                   trace::SharedAddressSpace &space,
                   trace::MemorySink *sink)
    : cfg_(config), vol_(volume),
      image_(space, "vol.image",
             static_cast<std::size_t>(config.imageWidth) *
                 config.imageHeight,
             sink),
      flops_(config.numProcs)
{
    // Near-square processor grid over the image plane.
    procU_ = 1;
    for (std::uint32_t d = 1; d * d <= cfg_.numProcs; ++d) {
        if (cfg_.numProcs % d == 0)
            procU_ = d;
    }
    procV_ = cfg_.numProcs / procU_;
}

ProcId
Renderer::pixelOwner(std::uint32_t u, std::uint32_t v) const
{
    std::uint32_t bu = std::min(u * procU_ / cfg_.imageWidth, procU_ - 1);
    std::uint32_t bv = std::min(v * procV_ / cfg_.imageHeight,
                                procV_ - 1);
    return bv * procU_ + bu;
}

Renderer::Basis
Renderer::viewBasis() const
{
    double a = angleDeg_ * std::numbers::pi / 180.0;
    Basis b;
    b.dir[0] = std::sin(a);
    b.dir[1] = 0.0;
    b.dir[2] = std::cos(a);
    b.right[0] = std::cos(a);
    b.right[1] = 0.0;
    b.right[2] = -std::sin(a);
    b.up[0] = 0.0;
    b.up[1] = 1.0;
    b.up[2] = 0.0;
    return b;
}

double
Renderer::castRay(ProcId p, std::uint32_t u, std::uint32_t v,
                  const Basis &basis, FrameStats &stats)
{
    const auto &d = vol_.dims();
    double cx = d.nx / 2.0, cy = d.ny / 2.0, cz = d.nz / 2.0;
    double radius = 0.5 * std::sqrt(static_cast<double>(d.nx) * d.nx +
                                    static_cast<double>(d.ny) * d.ny +
                                    static_cast<double>(d.nz) * d.nz);

    // Image plane spans the volume's bounding sphere.
    double su = (static_cast<double>(u) + 0.5 - cfg_.imageWidth / 2.0) *
                (2.0 * radius / cfg_.imageWidth);
    double sv = (static_cast<double>(v) + 0.5 - cfg_.imageHeight / 2.0) *
                (2.0 * radius / cfg_.imageHeight);

    double ox, oy, oz;
    double dirx = basis.dir[0], diry = basis.dir[1], dirz = basis.dir[2];
    if (cfg_.perspective) {
        // Eye far enough back that the bounding sphere fills the fov;
        // rays fan out from the eye through the image plane at the
        // volume center.
        double half_fov = cfg_.fovDegrees * std::numbers::pi / 360.0;
        double eye_dist = radius / std::tan(half_fov) + radius;
        double ex = cx - eye_dist * basis.dir[0];
        double ey = cy - eye_dist * basis.dir[1];
        double ez = cz - eye_dist * basis.dir[2];
        double tx = cx + su * basis.right[0] + sv * basis.up[0];
        double ty = cy + su * basis.right[1] + sv * basis.up[1];
        double tz = cz + su * basis.right[2] + sv * basis.up[2];
        dirx = tx - ex;
        diry = ty - ey;
        dirz = tz - ez;
        double norm = std::sqrt(dirx * dirx + diry * diry +
                                dirz * dirz);
        dirx /= norm;
        diry /= norm;
        dirz /= norm;
        ox = ex;
        oy = ey;
        oz = ez;
    } else {
        ox = cx + su * basis.right[0] + sv * basis.up[0] -
             radius * basis.dir[0];
        oy = cy + su * basis.right[1] + sv * basis.up[1] -
             radius * basis.dir[1];
        oz = cz + su * basis.right[2] + sv * basis.up[2] -
             radius * basis.dir[2];
    }

    flops_.add(p, kFlopsPerRaySetup);

    // Clip to the volume's bounding box (pure geometry, no references).
    // The slab test below bounds t1 on every axis the ray crosses, so
    // start unbounded (a narrow-fov perspective eye sits far away).
    double t0 = 0.0;
    double t1 = std::numeric_limits<double>::max();
    auto clip = [&](double o, double dir, double lo, double hi) {
        if (std::abs(dir) < 1e-12) {
            if (o < lo || o > hi)
                t0 = t1 + 1.0;
            return;
        }
        double ta = (lo - o) / dir;
        double tb = (hi - o) / dir;
        if (ta > tb)
            std::swap(ta, tb);
        t0 = std::max(t0, ta);
        t1 = std::min(t1, tb);
    };
    clip(ox, dirx, 0.0, d.nx - 1.0);
    clip(oy, diry, 0.0, d.ny - 1.0);
    clip(oz, dirz, 0.0, d.nz - 1.0);
    if (t0 > t1)
        return 0.0;

    double alpha = 0.0;
    double color = 0.0;
    std::uint16_t floor_d = cfg_.densityFloor;
    double t = t0;
    while (t <= t1) {
        double x = ox + t * dirx;
        double y = oy + t * diry;
        double z = oz + t * dirz;

        double side = cfg_.useOctree
                          ? vol_.skipDistance(p, x, y, z, floor_d)
                          : 0.0;
        if (side > 0.0) {
            // Advance to the exit of the transparent node.
            double exit_t = t + side; // upper bound
            for (int ax = 0; ax < 3; ++ax) {
                double pos = ax == 0 ? x : (ax == 1 ? y : z);
                double dir = ax == 0 ? dirx : (ax == 1 ? diry : dirz);
                if (std::abs(dir) < 1e-12)
                    continue;
                double nb = std::floor(pos / side) * side;
                double bound = dir > 0 ? nb + side : nb;
                double step_t = t + (bound - pos) / dir;
                exit_t = std::min(exit_t, step_t);
            }
            t = std::max(exit_t + 1e-6, t + cfg_.sampleStep);
            ++stats.skips;
            continue;
        }

        double dens = vol_.sample(p, x, y, z);
        ++stats.samplesTaken;
        flops_.add(p, kFlopsPerSample);
        if (dens > floor_d) {
            double a_s = kOpacityScale *
                         std::min((dens - floor_d) / (255.0 - floor_d),
                                  1.0);
            color += (1.0 - alpha) * a_s * (dens / 255.0);
            alpha += (1.0 - alpha) * a_s;
            if (alpha >= cfg_.opacityCutoff) {
                ++stats.earlyTerminations;
                break;
            }
        }
        t += cfg_.sampleStep;
    }
    return std::min(color + (1.0 - alpha) * 0.0, 1.0);
}

FrameStats
Renderer::renderFrame()
{
    FrameStats stats;
    stats.raysPerProc.assign(cfg_.numProcs, 0);
    Basis basis = viewBasis();

    // Frame barrier: stealing reshuffles pixel ownership every frame,
    // so the previous frame's image writes (and the one-time volume /
    // octree construction) must be ordered before this frame's work.
    if (trace::MemorySink *sink = image_.sink())
        sink->barrier();

    // Static block assignment: per-processor ray queues in scan order.
    std::vector<std::deque<std::uint64_t>> queues(cfg_.numProcs);
    for (std::uint32_t v = 0; v < cfg_.imageHeight; ++v)
        for (std::uint32_t u = 0; u < cfg_.imageWidth; ++u)
            queues[pixelOwner(u, v)].push_back(
                static_cast<std::uint64_t>(v) * cfg_.imageWidth + u);

    // Returns the work (samples + skips) the chunk cost, so the
    // scheduler below can track per-processor virtual time.
    auto processChunk = [&](ProcId p, std::deque<std::uint64_t> &q) {
        std::uint64_t before = stats.samplesTaken + stats.skips;
        for (std::uint32_t c = 0; c < cfg_.stealChunk && !q.empty(); ++c) {
            std::uint64_t pix = q.front();
            q.pop_front();
            auto u = static_cast<std::uint32_t>(pix % cfg_.imageWidth);
            auto v = static_cast<std::uint32_t>(pix / cfg_.imageWidth);
            double grey = castRay(p, u, v, basis, stats);
            image_.write(p, pix, grey);
            ++stats.raysCast;
            ++stats.raysPerProc[p];
        }
        return stats.samplesTaken + stats.skips - before + 1;
    };

    // Virtual-time execution: the processor with the least accumulated
    // work runs next, so cheap-block processors drain their queues
    // early and then steal from the most loaded processor — the
    // ray-stealing load balancer of [Nieh & Levoy].
    std::vector<double> vtime(cfg_.numProcs, 0.0);
    std::vector<bool> done(cfg_.numProcs, false);
    std::uint32_t active = cfg_.numProcs;
    while (active > 0) {
        ProcId p = 0;
        double best = std::numeric_limits<double>::infinity();
        for (ProcId q = 0; q < cfg_.numProcs; ++q) {
            if (!done[q] && vtime[q] < best) {
                best = vtime[q];
                p = q;
            }
        }

        if (queues[p].empty()) {
            // Steal a chunk (tail, to preserve the victim's scan-order
            // coherence) from the most loaded processor.
            ProcId victim = p;
            std::size_t most = 0;
            for (ProcId q = 0; q < cfg_.numProcs; ++q) {
                if (queues[q].size() > most) {
                    most = queues[q].size();
                    victim = q;
                }
            }
            if (most == 0) {
                done[p] = true;
                --active;
                continue;
            }
            for (std::uint32_t c = 0;
                 c < cfg_.stealChunk && !queues[victim].empty(); ++c) {
                queues[p].push_back(queues[victim].back());
                queues[victim].pop_back();
                ++stats.raysStolen;
            }
        }
        vtime[p] += static_cast<double>(processChunk(p, queues[p]));
    }

    angleDeg_ += cfg_.degreesPerFrame;
    return stats;
}

double
Renderer::pixel(std::uint32_t u, std::uint32_t v) const
{
    return image_.raw(static_cast<std::size_t>(v) * cfg_.imageWidth + u);
}

void
Renderer::writePgm(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    out << "P5\n"
        << cfg_.imageWidth << " " << cfg_.imageHeight << "\n255\n";
    for (std::uint32_t v = 0; v < cfg_.imageHeight; ++v) {
        for (std::uint32_t u = 0; u < cfg_.imageWidth; ++u) {
            double g = std::clamp(pixel(u, v), 0.0, 1.0);
            out.put(static_cast<char>(std::lround(g * 255.0)));
        }
    }
}

} // namespace wsg::apps::volrend
