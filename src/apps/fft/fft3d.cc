#include "apps/fft/fft3d.hh"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wsg::apps::fft
{

Fft3d::Fft3d(const Fft3dConfig &config, trace::SharedAddressSpace &space,
             trace::MemorySink *sink)
    : cfg_(config),
      x_(space, "fft3d.x", 2 * config.N(), sink),
      y_(space, "fft3d.y", 2 * config.N(), sink),
      tw_(space, "fft3d.twiddles", 2 * config.N(), sink),
      flops_(config.numProcs),
      kernel_(tw_, config.N(), config.internalRadix, flops_)
{
    if ((cfg_.numProcs & (cfg_.numProcs - 1)) != 0)
        throw std::invalid_argument("Fft3d: P must be a power of two");
    if (cfg_.numProcs > cfg_.n0() || cfg_.numProcs > cfg_.n1() ||
        cfg_.numProcs > cfg_.n2()) {
        throw std::invalid_argument(
            "Fft3d: P must divide every dimension");
    }

    std::uint64_t N = cfg_.N();
    for (std::uint64_t k = 0; k < N; ++k) {
        double ang = -2.0 * std::numbers::pi *
                     static_cast<double>(k) / static_cast<double>(N);
        tw_.raw(2 * k) = std::cos(ang);
        tw_.raw(2 * k + 1) = std::sin(ang);
    }
}

void
Fft3d::setInput(std::uint64_t i0, std::uint64_t i1, std::uint64_t i2,
                std::complex<double> v)
{
    auto &buf = dataInX_ ? x_ : y_;
    std::uint64_t i = (i0 * cfg_.n1() + i1) * cfg_.n2() + i2;
    buf.raw(2 * i) = v.real();
    buf.raw(2 * i + 1) = v.imag();
}

std::complex<double>
Fft3d::output(std::uint64_t i0, std::uint64_t i1,
              std::uint64_t i2) const
{
    const auto &buf = dataInX_ ? x_ : y_;
    std::uint64_t i = (i0 * cfg_.n1() + i1) * cfg_.n2() + i2;
    return {buf.raw(2 * i), buf.raw(2 * i + 1)};
}

void
Fft3d::pass(trace::TracedArray<double> &src,
            trace::TracedArray<double> &dst, std::uint64_t rows,
            std::uint64_t cols)
{
    trace::MemorySink *sink = x_.sink();

    // FFT every length-`cols` row in place (block-distributed rows).
    std::uint64_t per_row = rows / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p)
        for (std::uint64_t r = p * per_row; r < (p + 1) * per_row; ++r)
            kernel_.run(p, src, r * cols, cols);
    // The rotation reads rows other processors just transformed.
    if (sink)
        sink->barrier();

    // Transpose (rows x cols) -> (cols x rows): the axis rotation.
    std::uint64_t per_dst = cols / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint64_t r = p * per_dst; r < (p + 1) * per_dst;
             ++r) {
            for (std::uint64_t c = 0; c < rows; ++c) {
                std::complex<double> v = readComplex(p, src,
                                                     c * cols + r);
                writeComplex(p, dst, r * rows + c, v);
            }
        }
    }
    if (sink)
        sink->barrier();
}

void
Fft3d::conjugateAll(trace::TracedArray<double> &buf, double scale)
{
    std::uint64_t per = cfg_.N() / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint64_t i = p * per; i < (p + 1) * per; ++i) {
            std::complex<double> v = readComplex(p, buf, i);
            writeComplex(p, buf, i, std::conj(v) * scale);
            flops_.add(p, 2);
        }
    }
}

void
Fft3d::forward()
{
    std::uint64_t n0 = cfg_.n0(), n1 = cfg_.n1(), n2 = cfg_.n2();
    auto &a = dataInX_ ? x_ : y_;
    auto &b = dataInX_ ? y_ : x_;
    // Order this call after whatever produced the input; each pass()
    // emits its own internal and trailing barriers.
    if (trace::MemorySink *sink = x_.sink())
        sink->barrier();

    // Layout (i0, i1, i2): transform i2, rotate -> (i2, i0, i1).
    pass(a, b, n0 * n1, n2);
    // Layout (i2, i0, i1): transform i1, rotate -> (i1, i2, i0).
    pass(b, a, n2 * n0, n1);
    // Layout (i1, i2, i0): transform i0, rotate -> (i0, i1, i2).
    pass(a, b, n1 * n2, n0);

    dataInX_ = !dataInX_;
}

void
Fft3d::inverse()
{
    trace::MemorySink *sink = x_.sink();
    auto &cur = dataInX_ ? x_ : y_;
    if (sink)
        sink->barrier();
    conjugateAll(cur, 1.0);
    forward();
    auto &now = dataInX_ ? x_ : y_;
    conjugateAll(now, 1.0 / static_cast<double>(cfg_.N()));
    if (sink)
        sink->barrier();
}

std::vector<std::complex<double>>
Fft3d::naiveDft3d(const std::vector<std::complex<double>> &in,
                  std::uint64_t n0, std::uint64_t n1, std::uint64_t n2,
                  int sign)
{
    std::vector<std::complex<double>> out(n0 * n1 * n2);
    for (std::uint64_t k0 = 0; k0 < n0; ++k0) {
        for (std::uint64_t k1 = 0; k1 < n1; ++k1) {
            for (std::uint64_t k2 = 0; k2 < n2; ++k2) {
                std::complex<double> acc{0.0, 0.0};
                for (std::uint64_t j0 = 0; j0 < n0; ++j0) {
                    for (std::uint64_t j1 = 0; j1 < n1; ++j1) {
                        for (std::uint64_t j2 = 0; j2 < n2; ++j2) {
                            double ang =
                                sign * 2.0 * std::numbers::pi *
                                (static_cast<double>(k0 * j0) / n0 +
                                 static_cast<double>(k1 * j1) / n1 +
                                 static_cast<double>(k2 * j2) / n2);
                            acc += in[(j0 * n1 + j1) * n2 + j2] *
                                   std::complex<double>(std::cos(ang),
                                                        std::sin(ang));
                        }
                    }
                }
                out[(k0 * n1 + k1) * n2 + k2] = acc;
            }
        }
    }
    return out;
}

} // namespace wsg::apps::fft
