/**
 * @file
 * Parallel 1-D complex FFT — the paper's transform workload (Section 5).
 *
 * The high-radix parallel organization the paper describes (radix-D
 * stages with all-to-all exchanges between them, each processor's local
 * work blocked by a smaller *internal radix*) is implemented as the
 * classical six-step / transpose FFT [Bailey 90, van Loan 92]:
 *
 *   view x as an n1 x n2 matrix (n1 = P, n2 = D = N/P), then
 *   T1 transpose -> local FFTs of length n1 -> twiddle scale ->
 *   T2 transpose -> local FFTs of length n2 -> T3 transpose.
 *
 * The transposes are the radix-D exchanges (all data crosses the machine
 * at each one); the local FFTs sweep their rows in groups of
 * `internalRadix` points, performing log2(radix) butterfly stages per
 * group — exactly the paper's "performing the log D stages ...
 * three-at-a-time, essentially performing a radix-8 computation within
 * the radix-D computation".
 *
 * Complex data is stored as interleaved (re, im) doubles in TracedArrays;
 * twiddles live in a shared read-only traced table.
 */

#ifndef WSG_APPS_FFT_PARALLEL_FFT_HH
#define WSG_APPS_FFT_PARALLEL_FFT_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/fft/local_fft.hh"
#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::fft
{

using trace::ProcId;

/** Configuration of a parallel FFT run. */
struct FftConfig
{
    /** log2 of the transform length. */
    std::uint32_t logN = 12;
    /** Processor count; power of two with numProcs^2 <= N. */
    std::uint32_t numProcs = 4;
    /** Internal radix (power of two >= 2) for the local FFT blocking. */
    std::uint32_t internalRadix = 8;

    std::uint64_t N() const { return std::uint64_t{1} << logN; }
    std::uint64_t pointsPerProc() const { return N() / numProcs; }
};

/** Traced six-step parallel FFT. */
class ParallelFft
{
  public:
    ParallelFft(const FftConfig &config, trace::SharedAddressSpace &space,
                trace::MemorySink *sink);

    /** Set input point @p i (untraced). */
    void setInput(std::uint64_t i, std::complex<double> v);
    /** Read output point @p i (untraced). */
    std::complex<double> output(std::uint64_t i) const;

    /** Load a whole input vector (untraced). */
    void loadInput(const std::vector<std::complex<double>> &in);
    /** Copy the whole output vector (untraced). */
    std::vector<std::complex<double>> copyOutput() const;

    /** Execute the forward transform (traced). */
    void forward();

    /** Execute the inverse transform (traced, conjugation trick). */
    void inverse();

    const trace::FlopCounter &flops() const { return flops_; }
    const FftConfig &config() const { return cfg_; }

    /** Direct O(N^2) DFT of @p in — test oracle. */
    static std::vector<std::complex<double>>
    naiveDft(const std::vector<std::complex<double>> &in, int sign = -1);

  private:
    /** Which processor owns row @p row of an @p rows -row matrix view. */
    ProcId rowOwner(std::uint64_t row, std::uint64_t rows) const;

    /**
     * Transpose src (viewed rows x cols, row-major) into dst (cols x
     * rows). Each processor produces its own block of dst rows, reading
     * possibly-remote src elements.
     */
    void transpose(trace::TracedArray<double> &src,
                   trace::TracedArray<double> &dst, std::uint64_t rows,
                   std::uint64_t cols);

    /** Multiply element (j2, k1) of the n2 x n1 view by W_N^(j2 k1). */
    void twiddleScale(trace::TracedArray<double> &buf);

    /** Conjugate the working array in place (traced). */
    void conjugateAll(trace::TracedArray<double> &buf, double scale);

    std::complex<double> twiddle(ProcId p, std::uint64_t k);

    FftConfig cfg_;
    trace::TracedArray<double> x_;
    trace::TracedArray<double> y_;
    trace::TracedArray<double> tw_;
    trace::FlopCounter flops_;
    LocalFft kernel_;
    /** Which buffer currently holds the data (x_ or y_). */
    bool dataInX_ = true;
};

} // namespace wsg::apps::fft

#endif // WSG_APPS_FFT_PARALLEL_FFT_HH
