#include "apps/fft/parallel_fft.hh"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wsg::apps::fft
{

ParallelFft::ParallelFft(const FftConfig &config,
                         trace::SharedAddressSpace &space,
                         trace::MemorySink *sink)
    : cfg_(config),
      x_(space, "fft.x", 2 * config.N(), sink),
      y_(space, "fft.y", 2 * config.N(), sink),
      tw_(space, "fft.twiddles", 2 * config.N(), sink),
      flops_(config.numProcs),
      kernel_(tw_, config.N(), config.internalRadix, flops_)
{
    if ((cfg_.numProcs & (cfg_.numProcs - 1)) != 0)
        throw std::invalid_argument("ParallelFft: P must be a power of 2");
    if (static_cast<std::uint64_t>(cfg_.numProcs) * cfg_.numProcs >
        cfg_.N()) {
        throw std::invalid_argument("ParallelFft: requires P^2 <= N");
    }

    // Twiddle table W_N^k, k in [0, N) (read-only shared data).
    std::uint64_t N = cfg_.N();
    for (std::uint64_t k = 0; k < N; ++k) {
        double ang = -2.0 * std::numbers::pi *
                     static_cast<double>(k) / static_cast<double>(N);
        tw_.raw(2 * k) = std::cos(ang);
        tw_.raw(2 * k + 1) = std::sin(ang);
    }
}

void
ParallelFft::setInput(std::uint64_t i, std::complex<double> v)
{
    auto &buf = dataInX_ ? x_ : y_;
    buf.raw(2 * i) = v.real();
    buf.raw(2 * i + 1) = v.imag();
}

std::complex<double>
ParallelFft::output(std::uint64_t i) const
{
    const auto &buf = dataInX_ ? x_ : y_;
    return {buf.raw(2 * i), buf.raw(2 * i + 1)};
}

void
ParallelFft::loadInput(const std::vector<std::complex<double>> &in)
{
    assert(in.size() == cfg_.N());
    for (std::uint64_t i = 0; i < in.size(); ++i)
        setInput(i, in[i]);
}

std::vector<std::complex<double>>
ParallelFft::copyOutput() const
{
    std::vector<std::complex<double>> out(cfg_.N());
    for (std::uint64_t i = 0; i < out.size(); ++i)
        out[i] = output(i);
    return out;
}

ProcId
ParallelFft::rowOwner(std::uint64_t row, std::uint64_t rows) const
{
    std::uint64_t per = rows / cfg_.numProcs;
    return static_cast<ProcId>(row / per);
}

std::complex<double>
ParallelFft::twiddle(ProcId p, std::uint64_t k)
{
    k &= cfg_.N() - 1;
    if (tw_.sink())
        tw_.sink()->read(p, tw_.addrOf(2 * k), 16);
    return {tw_.raw(2 * k), tw_.raw(2 * k + 1)};
}

void
ParallelFft::transpose(trace::TracedArray<double> &src,
                       trace::TracedArray<double> &dst,
                       std::uint64_t rows, std::uint64_t cols)
{
    // dst is cols x rows; processor p fills its contiguous block of dst
    // rows, reading the scattered (mostly remote) source elements — this
    // is the all-to-all exchange of a radix-D stage.
    std::uint64_t dst_rows = cols;
    std::uint64_t per = dst_rows / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint64_t r = p * per; r < (p + 1) * per; ++r) {
            for (std::uint64_t c = 0; c < rows; ++c) {
                std::complex<double> v = readComplex(p, src,
                                                     c * cols + r);
                writeComplex(p, dst, r * rows + c, v);
            }
        }
    }
}

void
ParallelFft::twiddleScale(trace::TracedArray<double> &buf)
{
    // buf is the n2 x n1 view; element (j2, k1) *= W_N^(j2 k1).
    std::uint64_t n1 = cfg_.numProcs;
    std::uint64_t n2 = cfg_.pointsPerProc();
    std::uint64_t per = n2 / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint64_t j2 = p * per; j2 < (p + 1) * per; ++j2) {
            for (std::uint64_t k1 = 0; k1 < n1; ++k1) {
                std::uint64_t i = j2 * n1 + k1;
                std::complex<double> v = readComplex(p, buf, i);
                std::complex<double> w = twiddle(p, j2 * k1);
                writeComplex(p, buf, i, v * w);
                flops_.add(p, 6);
            }
        }
    }
}

void
ParallelFft::conjugateAll(trace::TracedArray<double> &buf, double scale)
{
    std::uint64_t per = cfg_.pointsPerProc();
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint64_t i = p * per; i < (p + 1) * per; ++i) {
            std::complex<double> v = readComplex(p, buf, i);
            writeComplex(p, buf, i, std::conj(v) * scale);
            flops_.add(p, 2);
        }
    }
}

void
ParallelFft::forward()
{
    std::uint64_t n1 = cfg_.numProcs;
    std::uint64_t n2 = cfg_.pointsPerProc();
    auto &a = dataInX_ ? x_ : y_;
    auto &b = dataInX_ ? y_ : x_;
    // A transpose reads mostly-remote rows, so every step boundary is a
    // global barrier (as in the SPLASH-2 kernel); the leading barrier
    // orders this call after whatever produced the input.
    trace::MemorySink *sink = x_.sink();
    auto stepBarrier = [&] {
        if (sink)
            sink->barrier();
    };
    stepBarrier();

    // Step 1: transpose n1 x n2 -> n2 x n1.
    transpose(a, b, n1, n2);
    stepBarrier();

    // Step 2: FFT each length-n1 row of the n2 x n1 view.
    std::uint64_t per = n2 / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p)
        for (std::uint64_t r = p * per; r < (p + 1) * per; ++r)
            kernel_.run(p, b, r * n1, n1);
    stepBarrier();

    // Step 3: twiddle scaling.
    twiddleScale(b);
    stepBarrier();

    // Step 4: transpose n2 x n1 -> n1 x n2.
    transpose(b, a, n2, n1);
    stepBarrier();

    // Step 5: FFT each length-n2 row (one per processor).
    for (ProcId p = 0; p < cfg_.numProcs; ++p)
        kernel_.run(p, a, static_cast<std::uint64_t>(p) * n2, n2);
    stepBarrier();

    // Step 6: transpose n1 x n2 -> n2 x n1, yielding natural order.
    transpose(a, b, n1, n2);
    stepBarrier();

    dataInX_ = !dataInX_;
}

void
ParallelFft::inverse()
{
    trace::MemorySink *sink = x_.sink();
    auto &cur = dataInX_ ? x_ : y_;
    if (sink)
        sink->barrier();
    conjugateAll(cur, 1.0);
    forward();
    auto &now = dataInX_ ? x_ : y_;
    conjugateAll(now, 1.0 / static_cast<double>(cfg_.N()));
    if (sink)
        sink->barrier();
}

std::vector<std::complex<double>>
ParallelFft::naiveDft(const std::vector<std::complex<double>> &in,
                      int sign)
{
    std::size_t N = in.size();
    std::vector<std::complex<double>> out(N);
    for (std::size_t k = 0; k < N; ++k) {
        std::complex<double> acc{0.0, 0.0};
        for (std::size_t j = 0; j < N; ++j) {
            double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(j * k % N) /
                         static_cast<double>(N);
            acc += in[j] * std::complex<double>(std::cos(ang),
                                                std::sin(ang));
        }
        out[k] = acc;
    }
    return out;
}

} // namespace wsg::apps::fft
