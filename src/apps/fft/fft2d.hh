/**
 * @file
 * Parallel 2-D complex FFT — the paper notes its 1-D analysis "also
 * applies to the complex 2D and 3D FFT" (Section 5); this implements the
 * 2-D case so that claim can be checked empirically.
 *
 * Row-column algorithm: FFT every row, transpose, FFT every (former)
 * column, transpose back to natural order. Rows are block-distributed
 * across processors; both transposes are all-to-all exchanges, so the
 * communication structure matches the 1-D six-step transform and the
 * per-row work uses the same internal-radix kernel (same lev1WS).
 */

#ifndef WSG_APPS_FFT_FFT2D_HH
#define WSG_APPS_FFT_FFT2D_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/fft/local_fft.hh"
#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::fft
{

/** Configuration of a 2-D FFT run. */
struct Fft2dConfig
{
    /** log2 of the row count and row length. */
    std::uint32_t logRows = 5;
    std::uint32_t logCols = 5;
    /** Power of two dividing both rows and cols. */
    std::uint32_t numProcs = 4;
    /** Internal radix for the row kernel. */
    std::uint32_t internalRadix = 8;

    std::uint64_t rows() const { return std::uint64_t{1} << logRows; }
    std::uint64_t cols() const { return std::uint64_t{1} << logCols; }
    std::uint64_t N() const { return rows() * cols(); }
};

/** Traced parallel 2-D FFT. */
class Fft2d
{
  public:
    Fft2d(const Fft2dConfig &config, trace::SharedAddressSpace &space,
          trace::MemorySink *sink);

    /** Set input element (row, col), untraced. */
    void setInput(std::uint64_t row, std::uint64_t col,
                  std::complex<double> v);
    /** Read output element (row, col), untraced. */
    std::complex<double> output(std::uint64_t row,
                                std::uint64_t col) const;

    /** Forward 2-D transform (traced). */
    void forward();
    /** Inverse 2-D transform (traced, conjugation trick). */
    void inverse();

    const trace::FlopCounter &flops() const { return flops_; }
    const Fft2dConfig &config() const { return cfg_; }

    /** O(N^2) 2-D DFT oracle; in/out are rows x cols row-major. */
    static std::vector<std::complex<double>>
    naiveDft2d(const std::vector<std::complex<double>> &in,
               std::uint64_t rows, std::uint64_t cols, int sign = -1);

  private:
    /** FFT all rows of the rows x cols view in @p buf. */
    void rowFfts(trace::TracedArray<double> &buf, std::uint64_t rows,
                 std::uint64_t cols);
    /** Transpose rows x cols view in src into cols x rows view in dst. */
    void transpose(trace::TracedArray<double> &src,
                   trace::TracedArray<double> &dst, std::uint64_t rows,
                   std::uint64_t cols);
    void conjugateAll(trace::TracedArray<double> &buf, double scale);

    Fft2dConfig cfg_;
    trace::TracedArray<double> x_;
    trace::TracedArray<double> y_;
    trace::TracedArray<double> tw_;
    trace::FlopCounter flops_;
    LocalFft kernel_;
    bool dataInX_ = true;
};

} // namespace wsg::apps::fft

#endif // WSG_APPS_FFT_FFT2D_HH
