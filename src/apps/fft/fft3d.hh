/**
 * @file
 * Parallel 3-D complex FFT — completing Section 5's claim that the 1-D
 * analysis "also applies to the complex 2D and 3D FFT".
 *
 * Axis-rotation algorithm: three passes of (FFT along the contiguous
 * axis, then a traced all-to-all transpose that cyclically rotates the
 * axes). After three passes every axis has been transformed and the
 * data is back in its original (i0, i1, i2) layout. The per-axis FFTs
 * use the shared internal-radix kernel, so lev1WS matches the 1-D
 * transform's; the three transposes are the communication stages.
 */

#ifndef WSG_APPS_FFT_FFT3D_HH
#define WSG_APPS_FFT_FFT3D_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/fft/local_fft.hh"
#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::fft
{

/** Configuration of a 3-D FFT run. */
struct Fft3dConfig
{
    /** log2 of each dimension (n0 slowest, n2 contiguous). */
    std::uint32_t log0 = 3;
    std::uint32_t log1 = 3;
    std::uint32_t log2 = 3;
    /** Power of two dividing every plane count n0*n1, n1*n2, n2*n0. */
    std::uint32_t numProcs = 4;
    std::uint32_t internalRadix = 8;

    std::uint64_t n0() const { return std::uint64_t{1} << log0; }
    std::uint64_t n1() const { return std::uint64_t{1} << log1; }
    std::uint64_t n2() const { return std::uint64_t{1} << log2; }
    std::uint64_t N() const { return n0() * n1() * n2(); }
};

/** Traced parallel 3-D FFT. */
class Fft3d
{
  public:
    Fft3d(const Fft3dConfig &config, trace::SharedAddressSpace &space,
          trace::MemorySink *sink);

    /** Set input element (i0, i1, i2), untraced. */
    void setInput(std::uint64_t i0, std::uint64_t i1, std::uint64_t i2,
                  std::complex<double> v);
    /** Read output element (i0, i1, i2), untraced. */
    std::complex<double> output(std::uint64_t i0, std::uint64_t i1,
                                std::uint64_t i2) const;

    /** Forward 3-D transform (traced). */
    void forward();
    /** Inverse 3-D transform (traced, conjugation trick). */
    void inverse();

    const trace::FlopCounter &flops() const { return flops_; }
    const Fft3dConfig &config() const { return cfg_; }

    /** O(N^2) 3-D DFT oracle (flat (i0, i1, i2) layout). */
    static std::vector<std::complex<double>>
    naiveDft3d(const std::vector<std::complex<double>> &in,
               std::uint64_t n0, std::uint64_t n1, std::uint64_t n2,
               int sign = -1);

  private:
    /** One pass: FFT the length- @p cols rows, then transpose
     *  (rows x cols) -> (cols x rows), cycling the axes. */
    void pass(trace::TracedArray<double> &src,
              trace::TracedArray<double> &dst, std::uint64_t rows,
              std::uint64_t cols);
    void conjugateAll(trace::TracedArray<double> &buf, double scale);

    Fft3dConfig cfg_;
    trace::TracedArray<double> x_;
    trace::TracedArray<double> y_;
    trace::TracedArray<double> tw_;
    trace::FlopCounter flops_;
    LocalFft kernel_;
    bool dataInX_ = true;
};

} // namespace wsg::apps::fft

#endif // WSG_APPS_FFT_FFT3D_HH
