#include "apps/fft/local_fft.hh"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace wsg::apps::fft
{

std::uint64_t
bitReverse(std::uint64_t v, unsigned bits)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

namespace
{

unsigned
log2Exact(std::uint64_t v)
{
    unsigned l = 0;
    while ((std::uint64_t{1} << l) < v)
        ++l;
    return l;
}

} // namespace

LocalFft::LocalFft(trace::TracedArray<double> &twiddles,
                   std::uint64_t table_n, std::uint32_t radix,
                   trace::FlopCounter &flops)
    : tw_(twiddles), tableN_(table_n), radix_(radix), flops_(flops)
{
    if (radix_ < 2 || (radix_ & (radix_ - 1)) != 0)
        throw std::invalid_argument("LocalFft: bad internal radix");
    if (tableN_ == 0 || (tableN_ & (tableN_ - 1)) != 0)
        throw std::invalid_argument("LocalFft: bad twiddle table size");
}

std::complex<double>
LocalFft::twiddle(ProcId p, std::uint64_t k)
{
    k &= tableN_ - 1;
    if (tw_.sink())
        tw_.sink()->read(p, tw_.addrOf(2 * k), 16);
    return {tw_.raw(2 * k), tw_.raw(2 * k + 1)};
}

void
LocalFft::run(ProcId p, trace::TracedArray<double> &buf,
              std::uint64_t row_off, std::uint64_t len)
{
    if (len < 2)
        return;
    assert(tableN_ % len == 0 &&
           "LocalFft: row length must divide the twiddle table size");
    unsigned log_len = log2Exact(len);

    // Bit-reversal permutation (decimation in time).
    for (std::uint64_t i = 0; i < len; ++i) {
        std::uint64_t j = bitReverse(i, log_len);
        if (i < j) {
            std::complex<double> a = readComplex(p, buf, row_off + i);
            std::complex<double> b = readComplex(p, buf, row_off + j);
            writeComplex(p, buf, row_off + i, b);
            writeComplex(p, buf, row_off + j, a);
        }
    }

    // Butterfly stages in internal-radix groups.
    unsigned chunk_max = log2Exact(radix_);
    std::vector<std::complex<double>> g(radix_);

    for (unsigned s0 = 0; s0 < log_len; s0 += chunk_max) {
        unsigned chunk = std::min(chunk_max, log_len - s0);
        std::uint64_t gsize = std::uint64_t{1} << chunk;
        std::uint64_t lowCount = std::uint64_t{1} << s0;
        std::uint64_t hiCount = len >> (s0 + chunk);

        for (std::uint64_t hi = 0; hi < hiCount; ++hi) {
            for (std::uint64_t lo = 0; lo < lowCount; ++lo) {
                std::uint64_t base = (hi << (s0 + chunk)) | lo;

                for (std::uint64_t l = 0; l < gsize; ++l)
                    g[l] = readComplex(p, buf,
                                       row_off + (base | (l << s0)));

                for (unsigned d = 0; d < chunk; ++d) {
                    std::uint64_t m = std::uint64_t{1} << (s0 + d);
                    for (std::uint64_t l = 0; l < gsize; ++l) {
                        if (l & (std::uint64_t{1} << d))
                            continue;
                        std::uint64_t partner =
                            l | (std::uint64_t{1} << d);
                        std::uint64_t gl = base | (l << s0);
                        std::uint64_t t = gl & (m - 1);
                        std::complex<double> w =
                            twiddle(p, t * (tableN_ / (2 * m)));
                        std::complex<double> u = g[l];
                        std::complex<double> v = g[partner] * w;
                        g[l] = u + v;
                        g[partner] = u - v;
                        flops_.add(p, 10);
                    }
                }

                for (std::uint64_t l = 0; l < gsize; ++l)
                    writeComplex(p, buf, row_off + (base | (l << s0)),
                                 g[l]);
            }
        }
    }
}

} // namespace wsg::apps::fft
