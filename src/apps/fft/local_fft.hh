/**
 * @file
 * The blocked (internal-radix) local FFT kernel, shared by the 1-D
 * six-step transform and the 2-D row-column transform.
 *
 * Performs an in-place decimation-in-time FFT on a contiguous row of a
 * traced complex buffer. Butterfly stages are processed `log2(radix)` at
 * a time: each group of `radix` points is gathered once, pushed through
 * the stages in registers, and written back — the paper's internal-radix
 * blocking, whose working set (the group plus its twiddles) is lev1WS.
 *
 * Twiddles come from a shared read-only table of length tableN holding
 * W_tableN^k; the kernel can transform any length that divides tableN.
 */

#ifndef WSG_APPS_FFT_LOCAL_FFT_HH
#define WSG_APPS_FFT_LOCAL_FFT_HH

#include <complex>
#include <cstdint>

#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::fft
{

using trace::ProcId;

/** Traced read of complex element @p i (two doubles, one 16 B read). */
inline std::complex<double>
readComplex(ProcId p, const trace::TracedArray<double> &buf,
            std::uint64_t i)
{
    if (buf.sink())
        buf.sink()->read(p, buf.addrOf(2 * i), 16);
    return {buf.raw(2 * i), buf.raw(2 * i + 1)};
}

/** Traced write of complex element @p i. */
inline void
writeComplex(ProcId p, trace::TracedArray<double> &buf, std::uint64_t i,
             std::complex<double> v)
{
    if (buf.sink())
        buf.sink()->write(p, buf.addrOf(2 * i), 16);
    buf.rawData()[2 * i] = v.real();
    buf.rawData()[2 * i + 1] = v.imag();
}

/** Reverse the low @p bits bits of @p v. */
std::uint64_t bitReverse(std::uint64_t v, unsigned bits);

/** The kernel. Stateless apart from references to shared tables. */
class LocalFft
{
  public:
    /**
     * @param twiddles Traced table of tableN complex twiddles
     *                 W_tableN^k, k in [0, tableN).
     * @param table_n Table length (power of two).
     * @param radix Internal radix (power of two >= 2).
     * @param flops FLOP counter charged 10 per butterfly.
     */
    LocalFft(trace::TracedArray<double> &twiddles, std::uint64_t table_n,
             std::uint32_t radix, trace::FlopCounter &flops);

    /**
     * Transform the length- @p len row at complex offset @p row_off of
     * @p buf in place, on behalf of processor @p p. @p len must be a
     * power of two dividing tableN.
     */
    void run(ProcId p, trace::TracedArray<double> &buf,
             std::uint64_t row_off, std::uint64_t len);

    std::uint32_t radix() const { return radix_; }

  private:
    std::complex<double> twiddle(ProcId p, std::uint64_t k);

    trace::TracedArray<double> &tw_;
    std::uint64_t tableN_;
    std::uint32_t radix_;
    trace::FlopCounter &flops_;
};

} // namespace wsg::apps::fft

#endif // WSG_APPS_FFT_LOCAL_FFT_HH
