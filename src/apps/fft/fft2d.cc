#include "apps/fft/fft2d.hh"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wsg::apps::fft
{

Fft2d::Fft2d(const Fft2dConfig &config, trace::SharedAddressSpace &space,
             trace::MemorySink *sink)
    : cfg_(config),
      x_(space, "fft2d.x", 2 * config.N(), sink),
      y_(space, "fft2d.y", 2 * config.N(), sink),
      tw_(space, "fft2d.twiddles", 2 * config.N(), sink),
      flops_(config.numProcs),
      kernel_(tw_, config.N(), config.internalRadix, flops_)
{
    if ((cfg_.numProcs & (cfg_.numProcs - 1)) != 0)
        throw std::invalid_argument("Fft2d: P must be a power of two");
    if (cfg_.numProcs > cfg_.rows() || cfg_.numProcs > cfg_.cols())
        throw std::invalid_argument(
            "Fft2d: P must divide both rows and cols");

    // Shared twiddle table of length N = rows*cols: both row lengths
    // divide it, so the kernel can index W exactly.
    std::uint64_t N = cfg_.N();
    for (std::uint64_t k = 0; k < N; ++k) {
        double ang = -2.0 * std::numbers::pi *
                     static_cast<double>(k) / static_cast<double>(N);
        tw_.raw(2 * k) = std::cos(ang);
        tw_.raw(2 * k + 1) = std::sin(ang);
    }
}

void
Fft2d::setInput(std::uint64_t row, std::uint64_t col,
                std::complex<double> v)
{
    auto &buf = dataInX_ ? x_ : y_;
    std::uint64_t i = row * cfg_.cols() + col;
    buf.raw(2 * i) = v.real();
    buf.raw(2 * i + 1) = v.imag();
}

std::complex<double>
Fft2d::output(std::uint64_t row, std::uint64_t col) const
{
    const auto &buf = dataInX_ ? x_ : y_;
    std::uint64_t i = row * cfg_.cols() + col;
    return {buf.raw(2 * i), buf.raw(2 * i + 1)};
}

void
Fft2d::rowFfts(trace::TracedArray<double> &buf, std::uint64_t rows,
               std::uint64_t cols)
{
    std::uint64_t per = rows / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p)
        for (std::uint64_t r = p * per; r < (p + 1) * per; ++r)
            kernel_.run(p, buf, r * cols, cols);
}

void
Fft2d::transpose(trace::TracedArray<double> &src,
                 trace::TracedArray<double> &dst, std::uint64_t rows,
                 std::uint64_t cols)
{
    std::uint64_t per = cols / cfg_.numProcs; // dst rows
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint64_t r = p * per; r < (p + 1) * per; ++r) {
            for (std::uint64_t c = 0; c < rows; ++c) {
                std::complex<double> v = readComplex(p, src,
                                                     c * cols + r);
                writeComplex(p, dst, r * rows + c, v);
            }
        }
    }
}

void
Fft2d::conjugateAll(trace::TracedArray<double> &buf, double scale)
{
    std::uint64_t per = cfg_.N() / cfg_.numProcs;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint64_t i = p * per; i < (p + 1) * per; ++i) {
            std::complex<double> v = readComplex(p, buf, i);
            writeComplex(p, buf, i, std::conj(v) * scale);
            flops_.add(p, 2);
        }
    }
}

void
Fft2d::forward()
{
    std::uint64_t R = cfg_.rows();
    std::uint64_t C = cfg_.cols();
    auto &a = dataInX_ ? x_ : y_;
    auto &b = dataInX_ ? y_ : x_;
    // Step boundaries are global barriers (transposes read remote rows);
    // the leading one orders this call after the input producer.
    trace::MemorySink *sink = x_.sink();
    auto stepBarrier = [&] {
        if (sink)
            sink->barrier();
    };
    stepBarrier();

    // 1. FFT every row (length C) in place.
    rowFfts(a, R, C);
    stepBarrier();
    // 2. Transpose R x C -> C x R (all-to-all).
    transpose(a, b, R, C);
    stepBarrier();
    // 3. FFT every former column (length R).
    rowFfts(b, C, R);
    stepBarrier();
    // 4. Transpose back to natural R x C order.
    transpose(b, a, C, R);
    stepBarrier();
    // Data ends in `a`: parity unchanged.
}

void
Fft2d::inverse()
{
    trace::MemorySink *sink = x_.sink();
    auto &cur = dataInX_ ? x_ : y_;
    if (sink)
        sink->barrier();
    conjugateAll(cur, 1.0);
    forward();
    auto &now = dataInX_ ? x_ : y_;
    conjugateAll(now, 1.0 / static_cast<double>(cfg_.N()));
    if (sink)
        sink->barrier();
}

std::vector<std::complex<double>>
Fft2d::naiveDft2d(const std::vector<std::complex<double>> &in,
                  std::uint64_t rows, std::uint64_t cols, int sign)
{
    std::vector<std::complex<double>> out(rows * cols);
    for (std::uint64_t kr = 0; kr < rows; ++kr) {
        for (std::uint64_t kc = 0; kc < cols; ++kc) {
            std::complex<double> acc{0.0, 0.0};
            for (std::uint64_t r = 0; r < rows; ++r) {
                for (std::uint64_t c = 0; c < cols; ++c) {
                    double ang =
                        sign * 2.0 * std::numbers::pi *
                        (static_cast<double>(kr * r) / rows +
                         static_cast<double>(kc * c) / cols);
                    acc += in[r * cols + c] *
                           std::complex<double>(std::cos(ang),
                                                std::sin(ang));
                }
            }
            out[kr * cols + kc] = acc;
        }
    }
    return out;
}

} // namespace wsg::apps::fft
