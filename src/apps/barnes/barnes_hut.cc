#include "apps/barnes/barnes_hut.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <random>

namespace wsg::apps::barnes
{

namespace
{

/** Gravitational constant (model units). */
constexpr double kG = 1.0;

/** Interleave the low 21 bits of x, y, z into a Morton key. */
std::uint64_t
mortonKey(std::uint32_t x, std::uint32_t y, std::uint32_t z)
{
    auto spread = [](std::uint64_t v) {
        v &= 0x1fffff;
        v = (v | (v << 32)) & 0x1f00000000ffffULL;
        v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
        v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
        v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
        v = (v | (v << 2)) & 0x1249249249249249ULL;
        return v;
    };
    return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

/** FLOP charges per interaction type. */
constexpr std::uint64_t kFlopsBody = 20;
constexpr std::uint64_t kFlopsCellMono = 20;
constexpr std::uint64_t kFlopsCellQuad = 60;

} // namespace

BarnesHut::BarnesHut(const BarnesConfig &config,
                     trace::SharedAddressSpace &space,
                     trace::MemorySink *sink)
    : cfg_(config),
      pos_(space, "barnes.pos", 3 * config.numBodies, sink),
      vel_(space, "barnes.vel", 3 * config.numBodies, sink),
      acc_(space, "barnes.acc", 3 * config.numBodies, sink),
      mass_(space, "barnes.mass", config.numBodies, sink),
      cellHeap_(space, "barnes.cells",
                (std::uint64_t{4} * config.numBodies + 64) *
                    CellLayout::kTotalBytes,
                sink),
      tree_(cellHeap_),
      flops_(config.numProcs),
      owner_(config.numBodies, 0),
      cost_(config.numBodies, 1)
{}

void
BarnesHut::initPlummer()
{
    std::mt19937_64 rng(cfg_.seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    auto randUnit = [&](Vec3 &v) {
        // Marsaglia method for a uniform direction.
        double a, b, s;
        do {
            a = 2.0 * uni(rng) - 1.0;
            b = 2.0 * uni(rng) - 1.0;
            s = a * a + b * b;
        } while (s >= 1.0);
        double t = 2.0 * std::sqrt(1.0 - s);
        v = {a * t, b * t, 1.0 - 2.0 * s};
    };

    double m = 1.0 / cfg_.numBodies;
    for (std::uint32_t i = 0; i < cfg_.numBodies; ++i) {
        // Plummer radius with a cutoff at r = 10 scale lengths.
        double r;
        do {
            double u = uni(rng);
            r = 1.0 / std::sqrt(std::pow(std::max(u, 1e-10), -2.0 / 3.0) -
                                1.0);
        } while (r > 10.0);
        Vec3 dir;
        randUnit(dir);
        // Velocity from the Plummer distribution (von Neumann rejection).
        double q, g;
        do {
            q = uni(rng);
            g = uni(rng) * 0.1;
        } while (g > q * q * std::pow(1.0 - q * q, 3.5));
        double vesc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
        double v = q * vesc;
        Vec3 vdir;
        randUnit(vdir);
        setBody(i, {r * dir[0], r * dir[1], r * dir[2]},
                {v * vdir[0], v * vdir[1], v * vdir[2]}, m);
    }
}

void
BarnesHut::setBody(std::uint32_t i, const Vec3 &pos, const Vec3 &vel,
                   double mass)
{
    for (int a = 0; a < 3; ++a) {
        pos_.raw(3 * i + a) = pos[a];
        vel_.raw(3 * i + a) = vel[a];
        acc_.raw(3 * i + a) = 0.0;
    }
    mass_.raw(i) = mass;
}

Vec3
BarnesHut::bodyPosition(std::uint32_t i) const
{
    return {pos_.raw(3 * i), pos_.raw(3 * i + 1), pos_.raw(3 * i + 2)};
}

Vec3
BarnesHut::bodyVelocity(std::uint32_t i) const
{
    return {vel_.raw(3 * i), vel_.raw(3 * i + 1), vel_.raw(3 * i + 2)};
}

double
BarnesHut::bodyMass(std::uint32_t i) const
{
    return mass_.raw(i);
}

void
BarnesHut::partition()
{
    std::uint32_t n = cfg_.numBodies;

    // Normalize positions into Morton space.
    Vec3 lo = bodyPosition(0), hi = lo;
    for (std::uint32_t i = 0; i < n; ++i) {
        for (int a = 0; a < 3; ++a) {
            lo[a] = std::min(lo[a], pos_.raw(3 * i + a));
            hi[a] = std::max(hi[a], pos_.raw(3 * i + a));
        }
    }
    double span = 1e-12;
    for (int a = 0; a < 3; ++a)
        span = std::max(span, hi[a] - lo[a]);

    std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t q[3];
        for (int a = 0; a < 3; ++a) {
            double t = (pos_.raw(3 * i + a) - lo[a]) / span;
            q[a] = static_cast<std::uint32_t>(
                std::min(t, 1.0) * ((1u << 21) - 1));
        }
        keyed[i] = {mortonKey(q[0], q[1], q[2]), i};
    }
    std::sort(keyed.begin(), keyed.end());

    // Costzones-style split: contiguous Morton runs of ~equal cost.
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        total += cost_[i];
    std::uint64_t per = std::max<std::uint64_t>(1, total / cfg_.numProcs);

    order_.resize(n);
    std::uint64_t acc = 0;
    for (std::uint32_t k = 0; k < n; ++k) {
        std::uint32_t i = keyed[k].second;
        order_[k] = i;
        ProcId p = static_cast<ProcId>(
            std::min<std::uint64_t>(acc / per, cfg_.numProcs - 1));
        owner_[i] = p;
        acc += cost_[i];
    }
}

void
BarnesHut::buildTree()
{
    tree_.build(pos_.rawData(), owner_);
    tree_.computeMoments(pos_.rawData(), mass_.rawData(), pos_, mass_);
}

void
BarnesHut::buildOnly()
{
    partition();
    buildTree();
}

StepStats
BarnesHut::walkBody(std::uint32_t i, Vec3 &acc, ProcId p,
                    bool traced) const
{
    StepStats st;
    acc = {0, 0, 0};
    const auto &cells = tree_.cells();
    if (cells.empty())
        return st;

    double xi = pos_.rawData()[3 * i];
    double yi = pos_.rawData()[3 * i + 1];
    double zi = pos_.rawData()[3 * i + 2];
    if (traced && pos_.sink())
        pos_.sink()->read(p, pos_.addrOf(3 * i), 24);

    double eps2 = cfg_.softening * cfg_.softening;
    double theta2 = cfg_.theta * cfg_.theta;

    std::vector<std::int32_t> stack{tree_.root()};
    while (!stack.empty()) {
        const Cell &cell = cells[static_cast<std::size_t>(stack.back())];
        stack.pop_back();
        if (cell.mass <= 0.0 && !cell.isLeaf())
            continue;

        double dx = xi - cell.com[0];
        double dy = yi - cell.com[1];
        double dz = zi - cell.com[2];
        double r2 = dx * dx + dy * dy + dz * dz;
        if (traced)
            cellHeap().read(p, cell.addr + CellLayout::comOffset(),
                            CellLayout::kComBytes);

        if (cell.isLeaf()) {
            if (cell.body == static_cast<std::int32_t>(i))
                continue;
            double r2s = r2 + eps2;
            double inv = 1.0 / (r2s * std::sqrt(r2s));
            double f = -kG * cell.mass * inv;
            acc[0] += f * dx;
            acc[1] += f * dy;
            acc[2] += f * dz;
            ++st.bodyInteractions;
            continue;
        }

        // Opening criterion: side / distance < theta.
        double side = 2.0 * cell.halfSize;
        if (traced)
            cellHeap().read(p, cell.addr + CellLayout::geomOffset(),
                            CellLayout::kGeomBytes);
        if (side * side >= theta2 * r2) {
            // Open the cell.
            if (traced)
                cellHeap().read(p,
                                cell.addr + CellLayout::childOffset(),
                                CellLayout::kChildBytes);
            ++st.cellsOpened;
            for (int o = 0; o < 8; ++o) {
                if (cell.child[o] >= 0)
                    stack.push_back(cell.child[o]);
            }
            continue;
        }

        // Accept: monopole (+ quadrupole) interaction.
        double r2s = r2 + eps2;
        double r1 = std::sqrt(r2s);
        double inv3 = 1.0 / (r2s * r1);
        double f = -kG * cell.mass * inv3;
        acc[0] += f * dx;
        acc[1] += f * dy;
        acc[2] += f * dz;

        if (cfg_.quadrupole) {
            if (traced)
                cellHeap().read(p, cell.addr + CellLayout::quadOffset(),
                                CellLayout::kQuadBytes);
            const auto &Q = cell.quad;
            double inv5 = inv3 / r2s;
            double inv7 = inv5 / r2s;
            double Qx = Q[0] * dx + Q[3] * dy + Q[4] * dz;
            double Qy = Q[3] * dx + Q[1] * dy + Q[5] * dz;
            double Qz = Q[4] * dx + Q[5] * dy + Q[2] * dz;
            double rQr = dx * Qx + dy * Qy + dz * Qz;
            acc[0] += kG * (Qx * inv5 - 2.5 * rQr * dx * inv7);
            acc[1] += kG * (Qy * inv5 - 2.5 * rQr * dy * inv7);
            acc[2] += kG * (Qz * inv5 - 2.5 * rQr * dz * inv7);
        }
        ++st.cellInteractions;
    }
    return st;
}

StepStats
BarnesHut::forcePhase()
{
    StepStats total;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        // Bodies are visited in Morton order within a partition, so
        // successive bodies are physically adjacent — the reuse the
        // paper's lev2WS captures.
        for (std::uint32_t k = 0; k < cfg_.numBodies; ++k) {
            std::uint32_t i = order_[k];
            if (owner_[i] != p)
                continue;
            Vec3 a;
            StepStats st = walkBody(i, a, p, true);
            total.bodyInteractions += st.bodyInteractions;
            total.cellInteractions += st.cellInteractions;
            total.cellsOpened += st.cellsOpened;
            cost_[i] = 1 + st.bodyInteractions + st.cellInteractions;
            std::uint64_t quad_extra =
                cfg_.quadrupole ? kFlopsCellQuad - kFlopsCellMono : 0;
            flops_.add(p, kFlopsBody * st.bodyInteractions +
                              (kFlopsCellMono + quad_extra) *
                                  st.cellInteractions);
            for (int ax = 0; ax < 3; ++ax)
                acc_.rawData()[3 * i + ax] = a[ax];
            if (acc_.sink())
                acc_.sink()->write(p, acc_.addrOf(3 * i), 24);
        }
    }
    return total;
}

void
BarnesHut::integrate()
{
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        for (std::uint32_t k = 0; k < cfg_.numBodies; ++k) {
            std::uint32_t i = order_[k];
            if (owner_[i] != p)
                continue;
            if (vel_.sink()) {
                acc_.sink()->read(p, acc_.addrOf(3 * i), 24);
                vel_.sink()->read(p, vel_.addrOf(3 * i), 24);
                vel_.sink()->write(p, vel_.addrOf(3 * i), 24);
                pos_.sink()->read(p, pos_.addrOf(3 * i), 24);
                pos_.sink()->write(p, pos_.addrOf(3 * i), 24);
            }
            for (int a = 0; a < 3; ++a) {
                vel_.rawData()[3 * i + a] +=
                    cfg_.dt * acc_.rawData()[3 * i + a];
                pos_.rawData()[3 * i + a] +=
                    cfg_.dt * vel_.rawData()[3 * i + a];
            }
            flops_.add(p, 12);
        }
    }
}

StepStats
BarnesHut::step()
{
    // Barriers mirror the SPLASH-2 structure: partitioning may hand a
    // body to a new owner, so the previous step's position writes must
    // be ordered before this step's tree build; the build's moment
    // writes before the force reads; the force's acceleration writes
    // before the update. (Within the build, the parent/child moment
    // dependence is ordered by per-cell release/acquire — see Octree.)
    trace::MemorySink *sink = pos_.sink();
    partition();
    if (sink)
        sink->barrier();
    buildTree();
    if (sink)
        sink->barrier();
    StepStats st = forcePhase();
    if (sink)
        sink->barrier();
    integrate();
    return st;
}

void
BarnesHut::accelerations(std::vector<Vec3> &out) const
{
    out.resize(cfg_.numBodies);
    for (std::uint32_t i = 0; i < cfg_.numBodies; ++i)
        walkBody(i, out[i], 0, false);
}

void
BarnesHut::directAccelerations(std::vector<Vec3> &out) const
{
    std::uint32_t n = cfg_.numBodies;
    double eps2 = cfg_.softening * cfg_.softening;
    out.assign(n, {0, 0, 0});
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            double dx = pos_.raw(3 * i) - pos_.raw(3 * j);
            double dy = pos_.raw(3 * i + 1) - pos_.raw(3 * j + 1);
            double dz = pos_.raw(3 * i + 2) - pos_.raw(3 * j + 2);
            double r2 = dx * dx + dy * dy + dz * dz + eps2;
            double f = -kG * mass_.raw(j) / (r2 * std::sqrt(r2));
            out[i][0] += f * dx;
            out[i][1] += f * dy;
            out[i][2] += f * dz;
        }
    }
}

double
BarnesHut::totalEnergy() const
{
    std::uint32_t n = cfg_.numBodies;
    double eps2 = cfg_.softening * cfg_.softening;
    double ke = 0.0, pe = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
        double v2 = 0.0;
        for (int a = 0; a < 3; ++a)
            v2 += vel_.raw(3 * i + a) * vel_.raw(3 * i + a);
        ke += 0.5 * mass_.raw(i) * v2;
        for (std::uint32_t j = i + 1; j < n; ++j) {
            double dx = pos_.raw(3 * i) - pos_.raw(3 * j);
            double dy = pos_.raw(3 * i + 1) - pos_.raw(3 * j + 1);
            double dz = pos_.raw(3 * i + 2) - pos_.raw(3 * j + 2);
            double r = std::sqrt(dx * dx + dy * dy + dz * dz + eps2);
            pe -= kG * mass_.raw(i) * mass_.raw(j) / r;
        }
    }
    return ke + pe;
}

} // namespace wsg::apps::barnes
