/**
 * @file
 * Octree for the Barnes-Hut hierarchical N-body method (Section 6).
 *
 * The tree represents recursively subdivided space; internal cells carry
 * center of mass, total mass and traceless quadrupole moments, leaves
 * reference individual bodies. Cells live in a TracedHeap so every field
 * access during the (traced) phases produces memory references at stable
 * simulated addresses; the geometric build bookkeeping itself is host-side.
 */

#ifndef WSG_APPS_BARNES_OCTREE_HH
#define WSG_APPS_BARNES_OCTREE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/traced_array.hh"

namespace wsg::apps::barnes
{

using trace::Addr;
using trace::ProcId;

/** 3-vector of doubles. */
using Vec3 = std::array<double, 3>;

/** One octree node (internal cell or single-body leaf). */
struct Cell
{
    /** Geometric center and half side length of the cube. */
    Vec3 center{0, 0, 0};
    double halfSize = 0.0;
    /** Center of mass and total mass of the subtree. */
    Vec3 com{0, 0, 0};
    double mass = 0.0;
    /** Traceless quadrupole moments (xx, yy, zz, xy, xz, yz). */
    std::array<double, 6> quad{0, 0, 0, 0, 0, 0};
    /** Child cell indices, -1 when absent. */
    std::array<std::int32_t, 8> child{-1, -1, -1, -1, -1, -1, -1, -1};
    /** Body index for leaves, -1 for internal cells. */
    std::int32_t body = -1;
    /** Simulated base address of this cell's record. */
    Addr addr = 0;
    /** Processor that owns this cell's moment computation. */
    ProcId owner = 0;

    bool isLeaf() const { return body >= 0; }
};

/** Byte layout of a cell record in the simulated address space. */
struct CellLayout
{
    static constexpr std::uint32_t kComBytes = 4 * 8;   // com + mass
    static constexpr std::uint32_t kQuadBytes = 6 * 8;
    static constexpr std::uint32_t kGeomBytes = 4 * 8;  // center + size
    static constexpr std::uint32_t kChildBytes = 8 * 8; // child pointers
    static constexpr std::uint32_t kTotalBytes =
        kComBytes + kQuadBytes + kGeomBytes + kChildBytes;

    static constexpr std::uint32_t comOffset() { return 0; }
    static constexpr std::uint32_t quadOffset() { return kComBytes; }
    static constexpr std::uint32_t
    geomOffset()
    {
        return kComBytes + kQuadBytes;
    }
    static constexpr std::uint32_t
    childOffset()
    {
        return kComBytes + kQuadBytes + kGeomBytes;
    }
};

/**
 * Octree over a set of body positions. Rebuilt once per time-step; the
 * backing TracedHeap is reset and reused so cell addresses are stable
 * across steps (arena reuse, as in real implementations).
 */
class Octree
{
  public:
    /**
     * @param heap Traced arena the cell records are allocated from.
     */
    explicit Octree(trace::TracedHeap &heap) : heap_(&heap) {}

    /**
     * Build the tree from scratch over @p positions (host-side geometry;
     * the traced moment pass follows separately).
     *
     * @param positions xyz triples, 3*n doubles.
     * @param owners Moment-phase owner per body.
     */
    void build(const std::vector<double> &positions,
               const std::vector<ProcId> &owners);

    /**
     * Compute centers of mass, masses and quadrupole moments bottom-up.
     * Traced: each cell's owner reads child moments and writes its own.
     *
     * @param positions Body positions (3*n doubles).
     * @param masses Body masses (n doubles).
     * @param pos_array Traced body-position array (for leaf reads).
     * @param mass_array Traced body-mass array.
     */
    void computeMoments(const std::vector<double> &positions,
                        const std::vector<double> &masses,
                        trace::TracedArray<double> &pos_array,
                        trace::TracedArray<double> &mass_array);

    const std::vector<Cell> &cells() const { return cells_; }
    std::vector<Cell> &cells() { return cells_; }

    /** Root cell index (0 when built; tree must not be empty). */
    std::int32_t root() const { return cells_.empty() ? -1 : 0; }

    /** Number of cells (internal + leaves). */
    std::size_t size() const { return cells_.size(); }

    trace::TracedHeap &heap() { return *heap_; }

    /** Maximum depth of the built tree (diagnostics / invariants). */
    int maxDepth() const;

  private:
    std::int32_t newCell(const Vec3 &center, double half_size);
    void insert(std::int32_t cell_idx, std::int32_t body_idx,
                const std::vector<double> &positions, int depth);
    int computeMomentsRec(std::int32_t cell_idx,
                          const std::vector<double> &positions,
                          const std::vector<double> &masses,
                          trace::TracedArray<double> &pos_array,
                          trace::TracedArray<double> &mass_array);

    trace::TracedHeap *heap_;
    std::vector<Cell> cells_;
    std::vector<ProcId> bodyOwner_;
};

} // namespace wsg::apps::barnes

#endif // WSG_APPS_BARNES_OCTREE_HH
