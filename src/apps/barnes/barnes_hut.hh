/**
 * @file
 * Barnes-Hut 3-D galactic simulation driver (Section 6).
 *
 * Each time-step: (re)partition bodies among processors along a Morton
 * space-filling curve weighted by last step's interaction counts (a
 * costzones-style partition, giving the physical locality the paper's
 * lev2WS reuse depends on), rebuild the octree, compute moments
 * bottom-up, compute forces with the theta opening criterion and
 * quadrupole moments, and advance positions with a leapfrog integrator.
 *
 * The force phase — by far the dominant one — is fully traced: every
 * visit reads the cell's center of mass/mass, the opening test reads its
 * geometry, accepted cells additionally read quadrupole moments, and
 * opened cells read the child-pointer array.
 */

#ifndef WSG_APPS_BARNES_BARNES_HUT_HH
#define WSG_APPS_BARNES_BARNES_HUT_HH

#include <cstdint>
#include <vector>

#include "apps/barnes/octree.hh"
#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::barnes
{

/** Configuration of a Barnes-Hut run. */
struct BarnesConfig
{
    std::uint32_t numBodies = 1024;
    std::uint32_t numProcs = 4;
    /** Opening-criterion accuracy parameter. */
    double theta = 1.0;
    /** Leapfrog time-step. */
    double dt = 0.025;
    /** Plummer softening length. */
    double softening = 0.05;
    /** Use quadrupole moments in cell interactions. */
    bool quadrupole = true;
    std::uint64_t seed = 42;
};

/** Per-step summary statistics. */
struct StepStats
{
    std::uint64_t bodyInteractions = 0;
    std::uint64_t cellInteractions = 0;
    std::uint64_t cellsOpened = 0;
};

/** The traced Barnes-Hut application. */
class BarnesHut
{
  public:
    BarnesHut(const BarnesConfig &config,
              trace::SharedAddressSpace &space, trace::MemorySink *sink);

    /** Initialize bodies from a Plummer-model distribution (untraced). */
    void initPlummer();

    /** Place body @p i explicitly (untraced; for tests). */
    void setBody(std::uint32_t i, const Vec3 &pos, const Vec3 &vel,
                 double mass);

    /** Advance one time-step (partition, build, moments, force, push). */
    StepStats step();

    /**
     * Compute the Barnes-Hut acceleration of every body into @p out
     * without advancing (untraced tree use; for accuracy tests). Uses
     * the tree from the last step() or buildOnly().
     */
    void accelerations(std::vector<Vec3> &out) const;

    /** Partition + build + moments only (untraced phases available). */
    void buildOnly();

    /** Direct O(n^2) accelerations — accuracy oracle (untraced). */
    void directAccelerations(std::vector<Vec3> &out) const;

    /** Total energy (kinetic + softened potential), untraced oracle. */
    double totalEnergy() const;

    Vec3 bodyPosition(std::uint32_t i) const;
    Vec3 bodyVelocity(std::uint32_t i) const;
    double bodyMass(std::uint32_t i) const;

    /** Owner processor of each body in the current partition. */
    const std::vector<ProcId> &owners() const { return owner_; }

    const Octree &tree() const { return tree_; }
    const trace::FlopCounter &flops() const { return flops_; }
    const BarnesConfig &config() const { return cfg_; }

  private:
    void partition();
    void buildTree();
    StepStats forcePhase();
    void integrate();

    /**
     * Tree walk computing the force on body @p i. When @p traced, every
     * cell/body touch is reported to the sink on behalf of processor
     * @p p; untraced walks implement the test oracles.
     */
    StepStats walkBody(std::uint32_t i, Vec3 &acc, ProcId p,
                       bool traced) const;

    const trace::TracedHeap &cellHeap() const { return cellHeap_; }

    BarnesConfig cfg_;
    trace::TracedArray<double> pos_;  // 3n
    trace::TracedArray<double> vel_;  // 3n
    trace::TracedArray<double> acc_;  // 3n
    trace::TracedArray<double> mass_; // n
    trace::TracedHeap cellHeap_;
    Octree tree_;
    trace::FlopCounter flops_;

    std::vector<ProcId> owner_;
    /** Bodies in Morton (space-filling-curve) order. */
    std::vector<std::uint32_t> order_;
    /** Interactions per body last step (costzone weights). */
    std::vector<std::uint64_t> cost_;
};

} // namespace wsg::apps::barnes

#endif // WSG_APPS_BARNES_BARNES_HUT_HH
