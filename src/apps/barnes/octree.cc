#include "apps/barnes/octree.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wsg::apps::barnes
{

namespace
{

/** Octant of @p p relative to @p center (bit per axis). */
int
octantOf(const Vec3 &center, const double *p)
{
    int o = 0;
    for (int a = 0; a < 3; ++a) {
        if (p[a] >= center[a])
            o |= 1 << a;
    }
    return o;
}

/** Center of the @p oct octant of a cell at @p center / @p half. */
Vec3
childCenter(const Vec3 &center, double half, int oct)
{
    Vec3 c = center;
    double q = half / 2.0;
    for (int a = 0; a < 3; ++a)
        c[a] += (oct & (1 << a)) ? q : -q;
    return c;
}

/** Depth guard: co-located bodies would otherwise recurse forever. */
constexpr int kMaxDepth = 64;

} // namespace

std::int32_t
Octree::newCell(const Vec3 &center, double half_size)
{
    Cell cell;
    cell.center = center;
    cell.halfSize = half_size;
    cell.addr = heap_->allocate(CellLayout::kTotalBytes);
    cells_.push_back(cell);
    return static_cast<std::int32_t>(cells_.size() - 1);
}

void
Octree::build(const std::vector<double> &positions,
              const std::vector<ProcId> &owners)
{
    assert(positions.size() % 3 == 0);
    std::size_t n = positions.size() / 3;
    assert(owners.size() == n);

    cells_.clear();
    heap_->reset();
    bodyOwner_ = owners;
    if (n == 0)
        return;

    // Bounding cube.
    Vec3 lo{positions[0], positions[1], positions[2]};
    Vec3 hi = lo;
    for (std::size_t i = 0; i < n; ++i) {
        for (int a = 0; a < 3; ++a) {
            lo[a] = std::min(lo[a], positions[3 * i + a]);
            hi[a] = std::max(hi[a], positions[3 * i + a]);
        }
    }
    Vec3 center{(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2,
                (lo[2] + hi[2]) / 2};
    double half = 0.0;
    for (int a = 0; a < 3; ++a)
        half = std::max(half, (hi[a] - lo[a]) / 2.0);
    half = std::max(half, 1e-12) * 1.0001; // avoid zero-size root

    std::int32_t root_idx = newCell(center, half);
    cells_[root_idx].body = 0; // first body makes the root a leaf
    for (std::size_t i = 1; i < n; ++i)
        insert(root_idx, static_cast<std::int32_t>(i), positions, 0);
}

void
Octree::insert(std::int32_t cell_idx, std::int32_t body_idx,
               const std::vector<double> &positions, int depth)
{
    Cell &cell = cells_[cell_idx];
    if (cell.isLeaf()) {
        if (depth >= kMaxDepth) {
            // Co-located bodies: keep only the first in the leaf and
            // merge the rest at moment time (their mass still counts via
            // the parent anyway). In practice this is unreachable for
            // non-degenerate inputs.
            return;
        }
        // Split: push the resident body down, then retry.
        std::int32_t resident = cell.body;
        cell.body = -1;
        int oct =
            octantOf(cell.center, &positions[3 * resident]);
        Vec3 cc = childCenter(cell.center, cell.halfSize, oct);
        std::int32_t child_idx = newCell(cc, cell.halfSize / 2.0);
        cells_[child_idx].body = resident;
        cells_[cell_idx].child[oct] = child_idx;
    }

    Cell &parent = cells_[cell_idx];
    int oct = octantOf(parent.center, &positions[3 * body_idx]);
    std::int32_t child_idx = parent.child[oct];
    if (child_idx < 0) {
        Vec3 cc = childCenter(parent.center, parent.halfSize, oct);
        child_idx = newCell(cc, parent.halfSize / 2.0);
        cells_[child_idx].body = body_idx;
        cells_[cell_idx].child[oct] = child_idx;
    } else {
        insert(child_idx, body_idx, positions, depth + 1);
    }
}

int
Octree::computeMomentsRec(std::int32_t cell_idx,
                          const std::vector<double> &positions,
                          const std::vector<double> &masses,
                          trace::TracedArray<double> &pos_array,
                          trace::TracedArray<double> &mass_array)
{
    Cell &cell = cells_[cell_idx];

    if (cell.isLeaf()) {
        ProcId p = bodyOwner_[cell.body];
        cell.owner = p;
        // Read the body, write the cell's monopole (traced).
        if (pos_array.sink()) {
            pos_array.sink()->read(p, pos_array.addrOf(3 * cell.body), 24);
            mass_array.sink()->read(p, mass_array.addrOf(cell.body), 8);
        }
        for (int a = 0; a < 3; ++a)
            cell.com[a] = positions[3 * cell.body + a];
        cell.mass = masses[cell.body];
        cell.quad.fill(0.0);
        heap_->write(p, cell.addr + CellLayout::comOffset(),
                     CellLayout::kComBytes);
        heap_->write(p, cell.addr + CellLayout::quadOffset(),
                     CellLayout::kQuadBytes);
        // Publish the finished moments (ready-flag per cell): the
        // parent's owner may be a different processor and reads them in
        // this same phase, ordered by the matching acquire below.
        if (heap_->sink())
            heap_->sink()->lockRelease(p, cell.addr);
        return 1;
    }

    // Recurse first; the owner of the subtree's first body computes this
    // cell, reading each child's moments.
    int depth = 0;
    ProcId owner = 0;
    bool owner_set = false;
    for (int o = 0; o < 8; ++o) {
        if (cell.child[o] < 0)
            continue;
        depth = std::max(depth,
                         computeMomentsRec(cell.child[o], positions,
                                           masses, pos_array, mass_array));
        if (!owner_set) {
            owner = cells_[cell.child[o]].owner;
            owner_set = true;
        }
    }
    cell.owner = owner;

    // Monopole pass.
    Vec3 com{0, 0, 0};
    double mass = 0.0;
    heap_->read(owner, cell.addr + CellLayout::childOffset(),
                CellLayout::kChildBytes);
    for (int o = 0; o < 8; ++o) {
        if (cell.child[o] < 0)
            continue;
        const Cell &ch = cells_[cell.child[o]];
        // Wait for the child's moments (matches the child's release).
        if (heap_->sink())
            heap_->sink()->lockAcquire(owner, ch.addr);
        heap_->read(owner, ch.addr + CellLayout::comOffset(),
                    CellLayout::kComBytes);
        mass += ch.mass;
        for (int a = 0; a < 3; ++a)
            com[a] += ch.mass * ch.com[a];
    }
    if (mass > 0.0) {
        for (int a = 0; a < 3; ++a)
            com[a] /= mass;
    }
    cell.com = com;
    cell.mass = mass;

    // Quadrupole pass: parallel-axis shift of each child's moments.
    std::array<double, 6> quad{0, 0, 0, 0, 0, 0};
    for (int o = 0; o < 8; ++o) {
        if (cell.child[o] < 0)
            continue;
        const Cell &ch = cells_[cell.child[o]];
        heap_->read(owner, ch.addr + CellLayout::quadOffset(),
                    CellLayout::kQuadBytes);
        Vec3 d{ch.com[0] - com[0], ch.com[1] - com[1],
               ch.com[2] - com[2]};
        double d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        quad[0] += ch.quad[0] + ch.mass * (3.0 * d[0] * d[0] - d2);
        quad[1] += ch.quad[1] + ch.mass * (3.0 * d[1] * d[1] - d2);
        quad[2] += ch.quad[2] + ch.mass * (3.0 * d[2] * d[2] - d2);
        quad[3] += ch.quad[3] + ch.mass * 3.0 * d[0] * d[1];
        quad[4] += ch.quad[4] + ch.mass * 3.0 * d[0] * d[2];
        quad[5] += ch.quad[5] + ch.mass * 3.0 * d[1] * d[2];
    }
    cell.quad = quad;
    heap_->write(owner, cell.addr + CellLayout::comOffset(),
                 CellLayout::kComBytes);
    heap_->write(owner, cell.addr + CellLayout::quadOffset(),
                 CellLayout::kQuadBytes);
    if (heap_->sink())
        heap_->sink()->lockRelease(owner, cell.addr);
    return depth + 1;
}

void
Octree::computeMoments(const std::vector<double> &positions,
                       const std::vector<double> &masses,
                       trace::TracedArray<double> &pos_array,
                       trace::TracedArray<double> &mass_array)
{
    if (!cells_.empty())
        computeMomentsRec(root(), positions, masses, pos_array,
                          mass_array);
}

int
Octree::maxDepth() const
{
    // Depth via iterative DFS over the child links.
    if (cells_.empty())
        return 0;
    int max_depth = 1;
    std::vector<std::pair<std::int32_t, int>> stack{{root(), 1}};
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, depth);
        for (int o = 0; o < 8; ++o) {
            std::int32_t c = cells_[idx].child[o];
            if (c >= 0)
                stack.emplace_back(c, depth + 1);
        }
    }
    return max_depth;
}

} // namespace wsg::apps::barnes
