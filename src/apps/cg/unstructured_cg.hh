/**
 * @file
 * Conjugate gradient on an unstructured mesh — the irregular-problem
 * case of Section 4.3: "many important problems (e.g., unstructured
 * problems that model complex physical structures) will not be nearly
 * as regular as the 2-D and 3-D grids considered here", with three
 * consequences the paper predicts: worse load balance, a higher
 * communication-to-computation ratio at the same data size, and a
 * partitioning step whose quality matters.
 *
 * The mesh is a symmetrized k-nearest-neighbour graph over random
 * points in the unit square (irregular degrees, strong spatial
 * structure), stored in CSR with traced index/weight/vector arrays. Two
 * partitioners are provided: a space-filling-curve (Morton) partition
 * and a random partition, so the paper's partitioning-quality point can
 * be measured directly.
 */

#ifndef WSG_APPS_CG_UNSTRUCTURED_CG_HH
#define WSG_APPS_CG_UNSTRUCTURED_CG_HH

#include <cstdint>
#include <vector>

#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::cg
{

using trace::ProcId;

/** How vertices are assigned to processors. */
enum class PartitionKind : std::uint8_t
{
    /** Contiguous runs along a Morton space-filling curve. */
    SpaceFillingCurve,
    /** Uniform random assignment (a deliberately bad baseline). */
    Random,
};

/** Configuration of an unstructured CG run. */
struct UnstructuredConfig
{
    /** Vertex count. */
    std::uint32_t numVertices = 1024;
    /** Neighbours per vertex before symmetrization. */
    std::uint32_t neighbors = 6;
    std::uint32_t numProcs = 4;
    PartitionKind partition = PartitionKind::SpaceFillingCurve;
    std::uint64_t seed = 1;
};

/** Result of a solve (same shape as the grid solver's). */
struct UnstructuredResult
{
    std::uint32_t iterations = 0;
    double finalResidualNorm = 0.0;
    bool converged = false;
};

/** Traced parallel CG on the k-NN mesh. */
class UnstructuredCg
{
  public:
    UnstructuredCg(const UnstructuredConfig &config,
                   trace::SharedAddressSpace &space,
                   trace::MemorySink *sink);

    /**
     * Generate the mesh, build the Laplacian system with b = A * ones,
     * and partition (untraced setup).
     */
    void buildSystem();

    /** Run CG from x = 0 (traced, phase-parallel). */
    UnstructuredResult run(std::uint32_t max_iters, double tol = 1e-8);

    /** Max |x_i - 1| after run(). */
    double solutionError() const;

    /** Owner of vertex @p v. */
    ProcId owner(std::uint32_t v) const { return owner_[v]; }

    /** Edges whose endpoints live on different processors. */
    std::uint64_t cutEdges() const;

    /** Total directed edges (CSR entries). */
    std::uint64_t numEdges() const { return colIdx_.size(); }

    /** Degree of vertex @p v. */
    std::uint32_t degree(std::uint32_t v) const;

    const trace::FlopCounter &flops() const { return flops_; }
    const UnstructuredConfig &config() const { return cfg_; }

  private:
    void buildMesh();
    void partition();

    /** Iterate a processor's vertices in partition order. */
    template <typename F>
    void forOwnVertices(ProcId p, F body) const;

    void matvec(ProcId p, const trace::TracedArray<double> &src,
                trace::TracedArray<double> &dst);
    double dotLocal(ProcId p, const trace::TracedArray<double> &u,
                    const trace::TracedArray<double> &v);

    UnstructuredConfig cfg_;
    /** Vertex coordinates (host-side; partitioning input). */
    std::vector<double> px_, py_;
    /** CSR row pointers (host copy mirrors the traced array). */
    std::vector<std::uint64_t> rowPtr_;
    std::vector<std::uint32_t> colIdx_;

    /** Traced CSR arrays, sized to the 2*k*n upper bound at
     *  construction and filled by buildSystem(). */
    trace::TracedArray<std::uint64_t> rowPtrArr_;
    trace::TracedArray<std::uint32_t> colIdxArr_;
    trace::TracedArray<double> w_;
    trace::TracedArray<double> x_;
    trace::TracedArray<double> b_;
    trace::TracedArray<double> r_;
    trace::TracedArray<double> p_;
    trace::TracedArray<double> q_;
    trace::FlopCounter flops_;

    std::vector<ProcId> owner_;
    /** Vertices in partition-sweep order per processor. */
    std::vector<std::vector<std::uint32_t>> sweep_;
};

} // namespace wsg::apps::cg

#endif // WSG_APPS_CG_UNSTRUCTURED_CG_HH
