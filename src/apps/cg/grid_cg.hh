/**
 * @file
 * Conjugate-gradient solver on regular 2-D / 3-D grids — the paper's
 * iterative-method workload (Section 4).
 *
 * The sparse matrix is the 5-point (2-D) or 7-point (3-D) Laplacian with
 * explicitly stored per-edge weights, viewed as a graph whose vertices are
 * grid points. Vertices are block-partitioned among a procX x procY
 * (x procZ) processor grid; each CG iteration performs the sparse
 * matrix-vector product, two dot products and three vector updates, with
 * every shared-data touch traced. Boundary exchanges appear naturally as
 * coherence misses on partition-edge x values.
 */

#ifndef WSG_APPS_CG_GRID_CG_HH
#define WSG_APPS_CG_GRID_CG_HH

#include <cstdint>
#include <vector>

#include "trace/address_space.hh"
#include "trace/flop_counter.hh"
#include "trace/traced_array.hh"

namespace wsg::apps::cg
{

using trace::ProcId;

/** Configuration of a grid CG run. */
struct CgConfig
{
    /** Grid side length (points per dimension). */
    std::uint32_t n = 64;
    /** 2 or 3 dimensions. */
    int dims = 2;
    /** Processor grid; each must divide n. procZ ignored when dims == 2. */
    std::uint32_t procX = 2;
    std::uint32_t procY = 2;
    std::uint32_t procZ = 1;
    /**
     * Sweep blocking (Section 4.2: "the size of lev1WS can actually be
     * kept constant through the use of blocking techniques"): when
     * non-zero, each processor sweeps its subgrid in x-strips of this
     * width, so the lev1WS window is ~3 strip widths instead of ~3 full
     * subrows — constant in n. 0 = unblocked row-major sweep. Must
     * divide the subgrid width when set.
     */
    std::uint32_t stripWidth = 0;

    std::uint32_t
    numProcs() const
    {
        return procX * procY * (dims == 3 ? procZ : 1);
    }

    std::uint64_t
    numPoints() const
    {
        std::uint64_t p = static_cast<std::uint64_t>(n) * n;
        return dims == 3 ? p * n : p;
    }

    /** Stencil size: 5 or 7. */
    std::uint32_t stencil() const { return dims == 2 ? 5 : 7; }
};

/** Result of a CG solve. */
struct CgResult
{
    std::uint32_t iterations = 0;
    double finalResidualNorm = 0.0;
    bool converged = false;
};

/** Traced parallel CG on a regular grid. */
class GridCg
{
  public:
    GridCg(const CgConfig &config, trace::SharedAddressSpace &space,
           trace::MemorySink *sink);

    /**
     * Build the Laplacian system with right-hand side b = A * ones, so
     * the exact solution is the all-ones vector (untraced setup).
     */
    void buildSystem();

    /**
     * Run CG from x = 0 for at most @p max_iters iterations or until the
     * residual 2-norm falls below @p tol. Traced, phase-parallel.
     */
    CgResult run(std::uint32_t max_iters, double tol = 1e-8);

    /**
     * Run (damped) Jacobi instead: x' = x + omega D^-1 (b - A x).
     * The paper notes its CG "results should be similar for a range of
     * other iterative methods" — Jacobi sweeps the same stencil with
     * the same reference structure, so its working sets should match.
     * Traced, phase-parallel, continues from the current x.
     */
    CgResult runJacobi(std::uint32_t max_iters, double tol = 1e-8,
                       double omega = 0.9);

    /** Max |x_i - 1| after run(); measures solution quality. */
    double solutionError() const;

    /** Owner of grid point (x, y, z). */
    ProcId owner(std::uint32_t x, std::uint32_t y, std::uint32_t z) const;

    const trace::FlopCounter &flops() const { return flops_; }
    const CgConfig &config() const { return cfg_; }

  private:
    /** Flat point id; x fastest. */
    std::uint64_t
    pid(std::uint32_t x, std::uint32_t y, std::uint32_t z) const
    {
        std::uint64_t id = static_cast<std::uint64_t>(y) * cfg_.n + x;
        if (cfg_.dims == 3)
            id += static_cast<std::uint64_t>(z) * cfg_.n * cfg_.n;
        return id;
    }

    /** Iterate a processor's own points in sweep order. */
    template <typename F>
    void forOwnPoints(ProcId p, F body) const;

    /** q = A * src over processor p's points. */
    void matvec(ProcId p, const trace::TracedArray<double> &src,
                trace::TracedArray<double> &dst);

    /** Local partial dot product over p's points. */
    double dotLocal(ProcId p, const trace::TracedArray<double> &u,
                    const trace::TracedArray<double> &v);

    CgConfig cfg_;
    /** Per-point stencil weights, stencil() doubles per point. */
    trace::TracedArray<double> w_;
    trace::TracedArray<double> x_;
    trace::TracedArray<double> b_;
    trace::TracedArray<double> r_;
    trace::TracedArray<double> p_;
    trace::TracedArray<double> q_;
    trace::FlopCounter flops_;
};

} // namespace wsg::apps::cg

#endif // WSG_APPS_CG_GRID_CG_HH
