#include "apps/cg/grid_cg.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace wsg::apps::cg
{

namespace
{

/** Stencil neighbour order: self, -x, +x, -y, +y, -z, +z. */
constexpr int kSelf = 0;

} // namespace

GridCg::GridCg(const CgConfig &config, trace::SharedAddressSpace &space,
               trace::MemorySink *sink)
    : cfg_(config),
      w_(space, "cg.weights", config.numPoints() * config.stencil(), sink),
      x_(space, "cg.x", config.numPoints(), sink),
      b_(space, "cg.b", config.numPoints(), sink),
      r_(space, "cg.r", config.numPoints(), sink),
      p_(space, "cg.p", config.numPoints(), sink),
      q_(space, "cg.q", config.numPoints(), sink),
      flops_(config.numProcs())
{
    if (cfg_.dims != 2 && cfg_.dims != 3)
        throw std::invalid_argument("GridCg: dims must be 2 or 3");
    if (cfg_.n % cfg_.procX != 0 || cfg_.n % cfg_.procY != 0 ||
        (cfg_.dims == 3 && cfg_.n % cfg_.procZ != 0)) {
        throw std::invalid_argument(
            "GridCg: processor grid must divide the point grid");
    }
    if (cfg_.stripWidth != 0 &&
        (cfg_.n / cfg_.procX) % cfg_.stripWidth != 0) {
        throw std::invalid_argument(
            "GridCg: stripWidth must divide the subgrid width");
    }
}

ProcId
GridCg::owner(std::uint32_t x, std::uint32_t y, std::uint32_t z) const
{
    std::uint32_t sx = cfg_.n / cfg_.procX;
    std::uint32_t sy = cfg_.n / cfg_.procY;
    ProcId p = (y / sy) * cfg_.procX + (x / sx);
    if (cfg_.dims == 3) {
        std::uint32_t sz = cfg_.n / cfg_.procZ;
        p += (z / sz) * cfg_.procX * cfg_.procY;
    }
    return p;
}

template <typename F>
void
GridCg::forOwnPoints(ProcId p, F body) const
{
    std::uint32_t sx = cfg_.n / cfg_.procX;
    std::uint32_t sy = cfg_.n / cfg_.procY;
    std::uint32_t sz = cfg_.dims == 3 ? cfg_.n / cfg_.procZ : 1;
    std::uint32_t px = p % cfg_.procX;
    std::uint32_t py = (p / cfg_.procX) % cfg_.procY;
    std::uint32_t pz = cfg_.dims == 3 ? p / (cfg_.procX * cfg_.procY) : 0;

    std::uint32_t zlo = pz * sz;
    std::uint32_t zhi = cfg_.dims == 3 ? zlo + sz : 1;
    // Strip width of 0 means one strip spanning the whole subrow.
    std::uint32_t strip = cfg_.stripWidth ? cfg_.stripWidth : sx;
    for (std::uint32_t z = zlo; z < zhi; ++z) {
        for (std::uint32_t x0 = px * sx; x0 < (px + 1) * sx; x0 += strip)
            for (std::uint32_t y = py * sy; y < (py + 1) * sy; ++y)
                for (std::uint32_t x = x0; x < x0 + strip; ++x)
                    body(x, y, z);
    }
}

void
GridCg::buildSystem()
{
    std::uint32_t S = cfg_.stencil();
    std::uint32_t zmax = cfg_.dims == 3 ? cfg_.n : 1;
    for (std::uint32_t z = 0; z < zmax; ++z) {
        for (std::uint32_t y = 0; y < cfg_.n; ++y) {
            for (std::uint32_t x = 0; x < cfg_.n; ++x) {
                std::uint64_t id = pid(x, y, z);
                double diag = 0.0;
                auto edge = [&](int slot, bool present) {
                    double v = present ? -1.0 : 0.0;
                    w_.raw(id * S + slot) = v;
                    if (present)
                        diag += 1.0;
                };
                edge(1, x > 0);
                edge(2, x + 1 < cfg_.n);
                edge(3, y > 0);
                edge(4, y + 1 < cfg_.n);
                if (cfg_.dims == 3) {
                    edge(5, z > 0);
                    edge(6, z + 1 < cfg_.n);
                }
                // Slightly diagonally dominant => SPD, CG converges.
                w_.raw(id * S + kSelf) = diag + 0.05;
            }
        }
    }

    // b = A * ones: row sum = 0.05 everywhere (off-diagonals cancel).
    std::uint64_t points = cfg_.numPoints();
    for (std::uint64_t i = 0; i < points; ++i) {
        double rowsum = 0.0;
        for (std::uint32_t s = 0; s < S; ++s)
            rowsum += w_.raw(i * S + s);
        b_.raw(i) = rowsum;
        x_.raw(i) = 0.0;
    }
}

void
GridCg::matvec(ProcId p, const trace::TracedArray<double> &src,
               trace::TracedArray<double> &dst)
{
    std::uint32_t S = cfg_.stencil();
    forOwnPoints(p, [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
        std::uint64_t id = pid(x, y, z);
        double acc =
            w_.read(p, id * S + kSelf) * src.read(p, id);
        flops_.add(p, 2);
        auto term = [&](int slot, bool present, std::uint64_t nid) {
            if (!present)
                return;
            acc += w_.read(p, id * S + slot) * src.read(p, nid);
            flops_.add(p, 2);
        };
        term(1, x > 0, x > 0 ? pid(x - 1, y, z) : 0);
        term(2, x + 1 < cfg_.n, x + 1 < cfg_.n ? pid(x + 1, y, z) : 0);
        term(3, y > 0, y > 0 ? pid(x, y - 1, z) : 0);
        term(4, y + 1 < cfg_.n, y + 1 < cfg_.n ? pid(x, y + 1, z) : 0);
        if (cfg_.dims == 3) {
            term(5, z > 0, z > 0 ? pid(x, y, z - 1) : 0);
            term(6, z + 1 < cfg_.n, z + 1 < cfg_.n ? pid(x, y, z + 1) : 0);
        }
        dst.write(p, id, acc);
    });
}

double
GridCg::dotLocal(ProcId p, const trace::TracedArray<double> &u,
                 const trace::TracedArray<double> &v)
{
    double acc = 0.0;
    forOwnPoints(p, [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
        std::uint64_t id = pid(x, y, z);
        acc += u.read(p, id) * v.read(p, id);
        flops_.add(p, 2);
    });
    return acc;
}

CgResult
GridCg::run(std::uint32_t max_iters, double tol)
{
    std::uint32_t P = cfg_.numProcs();
    // Global barriers separate the parallel phases; the reductions
    // themselves are host-side (untraced) and stand in for the barrier-
    // synchronized reduction trees of the real code.
    trace::MemorySink *sink = x_.sink();
    auto phaseBarrier = [&] {
        if (sink)
            sink->barrier();
    };

    // r = b - A x = b (x = 0); p = r.
    for (ProcId p = 0; p < P; ++p) {
        forOwnPoints(p,
                     [&](std::uint32_t x, std::uint32_t y,
                         std::uint32_t z) {
            std::uint64_t id = pid(x, y, z);
            double bv = b_.read(p, id);
            r_.write(p, id, bv);
            p_.write(p, id, bv);
        });
    }
    phaseBarrier();

    double rho = 0.0;
    for (ProcId p = 0; p < P; ++p)
        rho += dotLocal(p, r_, r_);
    phaseBarrier();

    CgResult result;
    for (std::uint32_t iter = 0; iter < max_iters; ++iter) {
        // q = A p (the dominant, communication-bearing phase).
        for (ProcId p = 0; p < P; ++p)
            matvec(p, p_, q_);
        phaseBarrier();

        double pq = 0.0;
        for (ProcId p = 0; p < P; ++p)
            pq += dotLocal(p, p_, q_);
        phaseBarrier();
        double alpha = rho / pq;

        // x += alpha p; r -= alpha q.
        for (ProcId p = 0; p < P; ++p) {
            forOwnPoints(p, [&](std::uint32_t x, std::uint32_t y,
                                std::uint32_t z) {
                std::uint64_t id = pid(x, y, z);
                double pv = p_.read(p, id);
                double qv = q_.read(p, id);
                x_.update(p, id, [&](double &v) { v += alpha * pv; });
                r_.update(p, id, [&](double &v) { v -= alpha * qv; });
                flops_.add(p, 4);
            });
        }
        phaseBarrier();

        double rho_new = 0.0;
        for (ProcId p = 0; p < P; ++p)
            rho_new += dotLocal(p, r_, r_);
        phaseBarrier();

        result.iterations = iter + 1;
        result.finalResidualNorm = std::sqrt(rho_new);
        if (result.finalResidualNorm < tol) {
            result.converged = true;
            return result;
        }

        double beta = rho_new / rho;
        for (ProcId p = 0; p < P; ++p) {
            forOwnPoints(p, [&](std::uint32_t x, std::uint32_t y,
                                std::uint32_t z) {
                std::uint64_t id = pid(x, y, z);
                double rv = r_.read(p, id);
                p_.update(p, id,
                          [&](double &v) { v = rv + beta * v; });
                flops_.add(p, 2);
            });
        }
        phaseBarrier();
        rho = rho_new;
    }
    return result;
}

CgResult
GridCg::runJacobi(std::uint32_t max_iters, double tol, double omega)
{
    std::uint32_t P = cfg_.numProcs();
    std::uint32_t S = cfg_.stencil();
    trace::MemorySink *sink = x_.sink();
    auto phaseBarrier = [&] {
        if (sink)
            sink->barrier();
    };

    CgResult result;
    for (std::uint32_t iter = 0; iter < max_iters; ++iter) {
        // q = A x (the same traced stencil sweep CG performs).
        for (ProcId p = 0; p < P; ++p)
            matvec(p, x_, q_);
        phaseBarrier();

        // x += omega * (b - q) / diag; accumulate the residual norm.
        double rho = 0.0;
        for (ProcId p = 0; p < P; ++p) {
            forOwnPoints(p, [&](std::uint32_t x, std::uint32_t y,
                                std::uint32_t z) {
                std::uint64_t id = pid(x, y, z);
                double resid = b_.read(p, id) - q_.read(p, id);
                double diag = w_.read(p, id * S + kSelf);
                x_.update(p, id, [&](double &v) {
                    v += omega * resid / diag;
                });
                rho += resid * resid;
                flops_.add(p, 6);
            });
        }
        phaseBarrier();

        result.iterations = iter + 1;
        result.finalResidualNorm = std::sqrt(rho);
        if (result.finalResidualNorm < tol) {
            result.converged = true;
            return result;
        }
    }
    return result;
}

double
GridCg::solutionError() const
{
    double worst = 0.0;
    for (std::uint64_t i = 0; i < cfg_.numPoints(); ++i)
        worst = std::max(worst, std::abs(x_.raw(i) - 1.0));
    return worst;
}

} // namespace wsg::apps::cg
