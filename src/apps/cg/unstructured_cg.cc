#include "apps/cg/unstructured_cg.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace wsg::apps::cg
{

namespace
{

/** Interleave 16-bit x/y into a 2-D Morton key. */
std::uint32_t
morton2d(std::uint32_t x, std::uint32_t y)
{
    auto spread = [](std::uint32_t v) {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff00ff;
        v = (v | (v << 4)) & 0x0f0f0f0f;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        return v;
    };
    return spread(x) | (spread(y) << 1);
}

} // namespace

UnstructuredCg::UnstructuredCg(const UnstructuredConfig &config,
                               trace::SharedAddressSpace &space,
                               trace::MemorySink *sink)
    : cfg_(config),
      rowPtrArr_(space, "ucg.rowptr", config.numVertices + 1, sink),
      colIdxArr_(space, "ucg.colidx",
                 std::size_t{2} * config.numVertices * config.neighbors,
                 sink),
      w_(space, "ucg.weights",
         std::size_t{2} * config.numVertices * config.neighbors +
             config.numVertices,
         sink),
      x_(space, "ucg.x", config.numVertices, sink),
      b_(space, "ucg.b", config.numVertices, sink),
      r_(space, "ucg.r", config.numVertices, sink),
      p_(space, "ucg.p", config.numVertices, sink),
      q_(space, "ucg.q", config.numVertices, sink),
      flops_(config.numProcs),
      owner_(config.numVertices, 0)
{
    if (cfg_.numVertices < 2 || cfg_.neighbors == 0 ||
        cfg_.numProcs == 0) {
        throw std::invalid_argument("UnstructuredCg: bad configuration");
    }
}

void
UnstructuredCg::buildMesh()
{
    std::uint32_t n = cfg_.numVertices;
    std::mt19937_64 rng(cfg_.seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    px_.resize(n);
    py_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        px_[i] = uni(rng);
        py_[i] = uni(rng);
    }

    // Symmetrized k-nearest-neighbour adjacency (brute force; setup is
    // host-side and not traced).
    std::vector<std::vector<std::uint32_t>> adj(n);
    std::vector<std::pair<double, std::uint32_t>> dist(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
            double dx = px_[i] - px_[j];
            double dy = py_[i] - py_[j];
            dist[j] = {dx * dx + dy * dy, j};
        }
        std::uint32_t k = std::min(cfg_.neighbors + 1, n);
        std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
        for (std::uint32_t s = 0; s < k; ++s) {
            std::uint32_t j = dist[s].second;
            if (j == i)
                continue;
            adj[i].push_back(j);
            adj[j].push_back(i);
        }
    }
    for (auto &nbrs : adj) {
        std::sort(nbrs.begin(), nbrs.end());
        nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    }

    rowPtr_.assign(n + 1, 0);
    colIdx_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        rowPtr_[i + 1] = rowPtr_[i] + adj[i].size();
        for (std::uint32_t j : adj[i])
            colIdx_.push_back(j);
    }
    assert(colIdx_.size() <=
           std::size_t{2} * cfg_.numVertices * cfg_.neighbors);

    // Mirror into the traced arrays (untraced fill).
    for (std::uint32_t i = 0; i <= n; ++i)
        rowPtrArr_.raw(i) = rowPtr_[i];
    for (std::size_t e = 0; e < colIdx_.size(); ++e)
        colIdxArr_.raw(e) = colIdx_[e];
}

void
UnstructuredCg::partition()
{
    std::uint32_t n = cfg_.numVertices;
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    if (cfg_.partition == PartitionKind::SpaceFillingCurve) {
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
            auto qa = morton2d(
                static_cast<std::uint32_t>(px_[a] * 65535.0),
                static_cast<std::uint32_t>(py_[a] * 65535.0));
            auto qb = morton2d(
                static_cast<std::uint32_t>(px_[b] * 65535.0),
                static_cast<std::uint32_t>(py_[b] * 65535.0));
            return qa < qb;
        });
    } else {
        std::mt19937_64 rng(cfg_.seed + 777);
        std::shuffle(order.begin(), order.end(), rng);
    }

    // Degree-weighted contiguous split: balances matvec work even
    // though degrees are irregular.
    std::uint64_t total_deg = colIdx_.size();
    std::uint64_t per = std::max<std::uint64_t>(
        1, total_deg / cfg_.numProcs);
    sweep_.assign(cfg_.numProcs, {});
    std::uint64_t acc = 0;
    for (std::uint32_t v : order) {
        ProcId p = static_cast<ProcId>(
            std::min<std::uint64_t>(acc / per, cfg_.numProcs - 1));
        owner_[v] = p;
        sweep_[p].push_back(v);
        acc += rowPtr_[v + 1] - rowPtr_[v];
    }
}

void
UnstructuredCg::buildSystem()
{
    buildMesh();
    partition();

    // Laplacian weights: -1 per edge, degree + 0.05 on the diagonal
    // (stored after the edge weights: w_[edge e] for off-diagonals,
    // w_[numEdges + v] for diagonals).
    std::uint32_t n = cfg_.numVertices;
    std::size_t ne = colIdx_.size();
    for (std::size_t e = 0; e < ne; ++e)
        w_.raw(e) = -1.0;
    for (std::uint32_t v = 0; v < n; ++v) {
        double deg = static_cast<double>(rowPtr_[v + 1] - rowPtr_[v]);
        w_.raw(ne + v) = deg + 0.05;
    }

    // b = A * ones = 0.05 everywhere; x = 0.
    for (std::uint32_t v = 0; v < n; ++v) {
        b_.raw(v) = 0.05;
        x_.raw(v) = 0.0;
    }
}

template <typename F>
void
UnstructuredCg::forOwnVertices(ProcId p, F body) const
{
    for (std::uint32_t v : sweep_[p])
        body(v);
}

void
UnstructuredCg::matvec(ProcId p, const trace::TracedArray<double> &src,
                       trace::TracedArray<double> &dst)
{
    std::size_t ne = colIdx_.size();
    forOwnVertices(p, [&](std::uint32_t v) {
        std::uint64_t lo = rowPtrArr_.read(p, v);
        std::uint64_t hi = rowPtrArr_.read(p, v + 1);
        double acc = w_.read(p, ne + v) * src.read(p, v);
        flops_.add(p, 2);
        for (std::uint64_t e = lo; e < hi; ++e) {
            std::uint32_t j = colIdxArr_.read(p, e);
            acc += w_.read(p, e) * src.read(p, j);
            flops_.add(p, 2);
        }
        dst.write(p, v, acc);
    });
}

double
UnstructuredCg::dotLocal(ProcId p, const trace::TracedArray<double> &u,
                         const trace::TracedArray<double> &v)
{
    double acc = 0.0;
    forOwnVertices(p, [&](std::uint32_t i) {
        acc += u.read(p, i) * v.read(p, i);
        flops_.add(p, 2);
    });
    return acc;
}

UnstructuredResult
UnstructuredCg::run(std::uint32_t max_iters, double tol)
{
    std::uint32_t P = cfg_.numProcs;
    // Barrier-separated phases; reductions are host-side (see GridCg).
    trace::MemorySink *sink = x_.sink();
    auto phaseBarrier = [&] {
        if (sink)
            sink->barrier();
    };

    for (ProcId p = 0; p < P; ++p) {
        forOwnVertices(p, [&](std::uint32_t v) {
            double bv = b_.read(p, v);
            r_.write(p, v, bv);
            p_.write(p, v, bv);
        });
    }
    phaseBarrier();

    double rho = 0.0;
    for (ProcId p = 0; p < P; ++p)
        rho += dotLocal(p, r_, r_);
    phaseBarrier();

    UnstructuredResult result;
    for (std::uint32_t iter = 0; iter < max_iters; ++iter) {
        for (ProcId p = 0; p < P; ++p)
            matvec(p, p_, q_);
        phaseBarrier();

        double pq = 0.0;
        for (ProcId p = 0; p < P; ++p)
            pq += dotLocal(p, p_, q_);
        phaseBarrier();
        double alpha = rho / pq;

        for (ProcId p = 0; p < P; ++p) {
            forOwnVertices(p, [&](std::uint32_t v) {
                double pv = p_.read(p, v);
                double qv = q_.read(p, v);
                x_.update(p, v, [&](double &t) { t += alpha * pv; });
                r_.update(p, v, [&](double &t) { t -= alpha * qv; });
                flops_.add(p, 4);
            });
        }
        phaseBarrier();

        double rho_new = 0.0;
        for (ProcId p = 0; p < P; ++p)
            rho_new += dotLocal(p, r_, r_);
        phaseBarrier();

        result.iterations = iter + 1;
        result.finalResidualNorm = std::sqrt(rho_new);
        if (result.finalResidualNorm < tol) {
            result.converged = true;
            return result;
        }

        double beta = rho_new / rho;
        for (ProcId p = 0; p < P; ++p) {
            forOwnVertices(p, [&](std::uint32_t v) {
                double rv = r_.read(p, v);
                p_.update(p, v, [&](double &t) { t = rv + beta * t; });
                flops_.add(p, 2);
            });
        }
        phaseBarrier();
        rho = rho_new;
    }
    return result;
}

double
UnstructuredCg::solutionError() const
{
    double worst = 0.0;
    for (std::uint32_t v = 0; v < cfg_.numVertices; ++v)
        worst = std::max(worst, std::abs(x_.raw(v) - 1.0));
    return worst;
}

std::uint64_t
UnstructuredCg::cutEdges() const
{
    std::uint64_t cut = 0;
    for (std::uint32_t v = 0; v < cfg_.numVertices; ++v) {
        for (std::uint64_t e = rowPtr_[v]; e < rowPtr_[v + 1]; ++e) {
            if (owner_[v] != owner_[colIdx_[e]])
                ++cut;
        }
    }
    return cut;
}

std::uint32_t
UnstructuredCg::degree(std::uint32_t v) const
{
    return static_cast<std::uint32_t>(rowPtr_[v + 1] - rowPtr_[v]);
}

} // namespace wsg::apps::cg
