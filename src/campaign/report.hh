/**
 * @file
 * Fleet-style aggregate reporting over a completed campaign
 * (wsg-campaign-report-v1).
 *
 * The per-study payloads (wsg-study-report-v3) carry full miss-rate
 * curves; a thousand-study campaign needs the cross-study view the
 * paper argues from: where the working-set knees fall across the
 * suite, how the miss-class mix shifts per application / line size /
 * problem size, and — the paper's machine-design question — what
 * fraction of the studied workloads a given per-node cache size
 * sustains (its largest working set fits).
 *
 * Determinism contract: the report is a pure function of the grid
 * (order, axes, hashes) and the study payload bytes. Grouping is
 * first-seen order over the grid — never map iteration — and doubles
 * go through JsonWriter's shortest-round-trip formatter, so two
 * campaigns over the same grid emit byte-identical reports even when
 * one of them was interrupted and resumed (serving dispositions and
 * timings are volatile, so they live in an opt-in "telemetry" block
 * that defaults to off). parseCampaignReport() inverts
 * writeCampaignReport() exactly; emit → parse → emit is
 * byte-identity, which the tests pin.
 */

#ifndef WSG_CAMPAIGN_REPORT_HH
#define WSG_CAMPAIGN_REPORT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/driver.hh"
#include "campaign/grid.hh"

namespace wsg::campaign
{

/** One working-set knee lifted from a study payload. */
struct KneeSummary
{
    std::uint64_t level = 0;
    std::uint64_t sizeBytes = 0;
    double missRateBefore = 0.0;
    double missRateAfter = 0.0;
};

/** Per-category fractions of total read misses at one sweep point. */
struct MissSplit
{
    double cold = 0.0;
    double capacity = 0.0;
    double trueSharing = 0.0;
    double falseSharing = 0.0;
};

/** The compact cross-study record for one grid entry. */
struct StudySummary
{
    std::string name;
    std::string hash;
    /** "ok", "failed", "timed_out", "overloaded" or "error". A study
     *  resumed off the manifest reports "ok" — how a result was
     *  served is telemetry, not a property of the result. */
    std::string status;

    // Axis coordinates (as requested; 0 / "" = axis default).
    std::string preset;
    std::string size;
    std::uint64_t lineBytes = 0;
    std::uint64_t pointsPerOctave = 0;
    std::string profiler;
    std::string sampling;
    /** Coherence protocol; "" = the default (write-invalidate). Only
     *  emitted when non-default, so default-axes reports keep their
     *  v1 bytes. */
    std::string protocol;
    /** Node hierarchy; "" = the default (single-level). Same
     *  conditional-emission contract as `protocol`. */
    std::string hierarchy;
    /** Replay scheduler label; "" = the default (static). Same
     *  conditional-emission contract as `protocol`. */
    std::string scheduler;

    // Metrics, present when status == "ok".
    std::uint64_t numProcs = 0;
    double floorRate = 0.0;
    std::uint64_t maxFootprintBytes = 0;
    std::uint64_t largestKneeBytes = 0;
    std::vector<KneeSummary> knees;
    /** Miss-class mix at the first sweep point at or past the largest
     *  knee (the "everything important fits" regime). */
    MissSplit missSplit;
    /** Coherence (true+false sharing) misses per reference. */
    double sharingMissRate = 0.0;

    std::string error;

    bool hasMetrics() const { return status == "ok"; }
};

/** Aggregates over one group of ok studies (an app, a line size…). */
struct GroupBreakdown
{
    /** Group label: a preset name, "line=32", "size=small", … */
    std::string key;
    std::uint64_t studies = 0;
    std::uint64_t kneeMinBytes = 0;
    std::uint64_t kneeMedianBytes = 0;
    std::uint64_t kneeMaxBytes = 0;
    double meanFloorRate = 0.0;
    /** Mean per-study miss-class fractions. */
    MissSplit missSplit;
    double meanSharingMissRate = 0.0;
};

/** Fraction of studies a cache of size C sustains, per node count. */
struct SustainabilityBand
{
    /** 0 = all studies pooled. */
    std::uint64_t numProcs = 0;
    std::uint64_t studies = 0;
    /** Parallel to CampaignReport::bandCacheSizes: fraction of the
     *  group whose largest knee fits in that cache. */
    std::vector<double> fractionFit;
};

/** The wsg-campaign-report-v1 document. */
struct CampaignReport
{
    std::string gridHash;
    std::uint64_t entries = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t errors = 0;

    /** One summary per grid entry, grid order. */
    std::vector<StudySummary> studies;
    /** First-seen-order groupings over the ok studies. */
    std::vector<GroupBreakdown> byPreset;
    std::vector<GroupBreakdown> byLineBytes;
    std::vector<GroupBreakdown> bySize;

    /** Power-of-two candidate per-node cache sizes, 1 KiB … 16 MiB. */
    std::vector<std::uint64_t> bandCacheSizes;
    /** Pooled band first (numProcs 0), then per node count,
     *  first-seen order. */
    std::vector<SustainabilityBand> bands;

    /** Volatile fleet telemetry; excluded from the emitted report
     *  unless set (resume changes it, byte-determinism must not). */
    bool hasTelemetry = false;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheJoins = 0;
    std::uint64_t resumedFromManifest = 0;
    std::uint64_t retriedRoundTrips = 0;
    std::uint64_t backoffMsTotal = 0;
    double cacheServedRatio = 0.0;
    double p50Seconds = 0.0;
    double p95Seconds = 0.0;
};

/**
 * Aggregate @p result (aligned with @p grid) into a report.
 * @p include_telemetry folds the driver's fleet telemetry in; leave
 * it off when the report must be byte-stable across resumed runs.
 * Unparsable ok payloads demote that study to status "error".
 */
CampaignReport buildCampaignReport(const Grid &grid,
                                   const CampaignResult &result,
                                   bool include_telemetry = false);

/** Serialize @p report (newline-terminated, deterministic bytes). */
std::string writeCampaignReport(const CampaignReport &report);

/** Exact inverse of writeCampaignReport.
 *  @throws CampaignError on malformed input or wrong schema. */
CampaignReport parseCampaignReport(std::string_view json);

} // namespace wsg::campaign

#endif // WSG_CAMPAIGN_REPORT_HH
