/**
 * @file
 * Campaign checkpointing: an append-only JSON-lines manifest keyed by
 * config hash (wsg-campaign-manifest-v1).
 *
 * The driver appends one record per finished study, flushing after
 * every write, so an interrupted campaign loses at most the studies
 * that were in flight. On restart the loader replays the file: the
 * header binds the manifest to a grid hash (resuming with a different
 * grid is an error, not a silent partial sweep), records are keyed by
 * config hash with last-record-wins, and a torn final line — the
 * expected shape of a crash mid-append — is ignored rather than
 * rejected.
 *
 * A manifest alone marks *what* completed; the report payloads live in
 * the campaign's results directory (one `<hash>.json` per study,
 * mirroring the daemon's content-addressed store) or are re-fetched
 * from the daemon's cache on resume, where they are hits by
 * definition.
 *
 * File shape:
 *
 *   {"schema":"wsg-campaign-manifest-v1","grid_hash":"…","entries":N}
 *   {"hash":"…","name":"…","status":"ok","cache":"miss", ...}
 *   …one line per completed study…
 */

#ifndef WSG_CAMPAIGN_MANIFEST_HH
#define WSG_CAMPAIGN_MANIFEST_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "campaign/grid.hh"

namespace wsg::campaign
{

/** One completed-study record. */
struct ManifestRecord
{
    /** Config hash (the key; 16 hex chars). */
    std::string hash;
    /** Entry name, for humans reading the file. */
    std::string name;
    /** "ok", "failed", "timed_out", "overloaded" or "error". */
    std::string status;
    /** Serving disposition: "hit", "miss", "join" or "". */
    std::string cache;
    std::uint64_t payloadBytes = 0;
    /** Round trips the entry took (retries included). */
    std::uint64_t attempts = 1;
    std::string error;
};

/** A loaded manifest: header + last record per config hash. */
struct ManifestContents
{
    std::string gridHash;
    std::map<std::string, ManifestRecord> records;
};

/**
 * Load @p path. A missing file yields empty contents (a fresh
 * campaign); an unparsable header is an error; an unparsable or
 * truncated record line ends the replay silently (crash tail).
 * @throws CampaignError on IO errors other than non-existence or on a
 *         malformed header.
 */
ManifestContents loadManifest(const std::string &path);

/**
 * Append-only manifest writer. Opening validates an existing file's
 * grid hash against @p grid_hash (mismatch throws CampaignError) and
 * otherwise writes a fresh header.
 */
class ManifestWriter
{
  public:
    ManifestWriter(const std::string &path, const std::string &grid_hash,
                   std::uint64_t entries);

    /** Append one record and flush. @throws CampaignError on IO. */
    void append(const ManifestRecord &record);

    /** Serialize @p record as one JSON line (newline included). */
    static std::string encodeRecord(const ManifestRecord &record);

  private:
    std::ofstream out_;
    std::string path_;
};

} // namespace wsg::campaign

#endif // WSG_CAMPAIGN_MANIFEST_HH
