#include "campaign/report.hh"

#include <algorithm>
#include <sstream>

#include "stats/json_parse.hh"
#include "stats/json_report.hh"

namespace wsg::campaign
{

namespace
{

constexpr const char *kSchema = "wsg-campaign-report-v1";

// --- payload extraction ------------------------------------------------

double
numberAt(const stats::JsonValue &obj, const char *key)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        throw CampaignError(std::string("study payload: missing or "
                                        "non-numeric '") +
                            key + "'");
    return v->asNumber();
}

std::uint64_t
countAt(const stats::JsonValue &obj, const char *key)
{
    double v = numberAt(obj, key);
    if (v < 0.0)
        throw CampaignError(std::string("study payload: negative '") +
                            key + "'");
    return static_cast<std::uint64_t>(v);
}

/**
 * Lift the cross-study metrics out of one wsg-study-report payload (v2 or v3)
 * into @p summary. @throws CampaignError on schema violations.
 */
void
summarizePayload(std::string_view payload, StudySummary &summary)
{
    stats::JsonValue root;
    try {
        root = stats::parseJson(payload);
    } catch (const stats::JsonParseError &e) {
        throw CampaignError(std::string("study payload: ") + e.what());
    }
    const stats::JsonValue *studies = root.find("studies");
    if (!root.isObject() || studies == nullptr ||
        !studies->isArray() || studies->size() == 0)
        throw CampaignError("study payload: no studies[] array");
    const stats::JsonValue &study = (*studies)[0];

    summary.floorRate = numberAt(study, "floor_rate");
    summary.maxFootprintBytes = countAt(study, "max_footprint_bytes");

    const stats::JsonValue *sets = study.find("working_sets");
    if (sets == nullptr || !sets->isArray())
        throw CampaignError("study payload: no working_sets[]");
    for (std::size_t i = 0; i < sets->size(); ++i) {
        const stats::JsonValue &ws = (*sets)[i];
        KneeSummary knee;
        knee.level = countAt(ws, "level");
        knee.sizeBytes = countAt(ws, "size_bytes");
        knee.missRateBefore = numberAt(ws, "miss_rate_before");
        knee.missRateAfter = numberAt(ws, "miss_rate_after");
        summary.largestKneeBytes =
            std::max(summary.largestKneeBytes, knee.sizeBytes);
        summary.knees.push_back(knee);
    }

    const stats::JsonValue *mc = study.find("miss_classes");
    if (mc == nullptr || !mc->isObject())
        throw CampaignError("study payload: no miss_classes{}");
    const stats::JsonValue *sizes = mc->find("cache_sizes_bytes");
    const stats::JsonValue *cold = mc->find("cold");
    const stats::JsonValue *capacity = mc->find("capacity");
    const stats::JsonValue *true_sharing = mc->find("true_sharing");
    const stats::JsonValue *false_sharing = mc->find("false_sharing");
    const stats::JsonValue *total = mc->find("total");
    if (sizes == nullptr || !sizes->isArray() || total == nullptr ||
        !total->isArray() || total->size() != sizes->size())
        throw CampaignError("study payload: malformed miss_classes");
    if (sizes->size() > 0) {
        // The mix in the "everything important fits" regime: the first
        // sweep point at or past the largest knee (the last point when
        // the sweep stops short of it).
        std::size_t at = sizes->size() - 1;
        for (std::size_t i = 0; i < sizes->size(); ++i) {
            if ((*sizes)[i].asNumber() >=
                static_cast<double>(summary.largestKneeBytes)) {
                at = i;
                break;
            }
        }
        double t = (*total)[at].asNumber();
        auto frac = [&](const stats::JsonValue *curve) {
            return t > 0.0 && curve != nullptr && curve->isArray() &&
                           curve->size() == sizes->size()
                       ? (*curve)[at].asNumber() / t
                       : 0.0;
        };
        summary.missSplit.cold = frac(cold);
        summary.missSplit.capacity = frac(capacity);
        summary.missSplit.trueSharing = frac(true_sharing);
        summary.missSplit.falseSharing = frac(false_sharing);
    }

    const stats::JsonValue *per_proc = mc->find("per_proc");
    if (per_proc == nullptr || !per_proc->isArray())
        throw CampaignError("study payload: no per_proc[]");
    summary.numProcs = per_proc->size();

    const stats::JsonValue *agg = study.find("aggregate");
    if (agg == nullptr || !agg->isObject())
        throw CampaignError("study payload: no aggregate{}");
    double refs = numberAt(*agg, "reads") + numberAt(*agg, "writes");
    double sharing = numberAt(*agg, "read_true_sharing") +
                     numberAt(*agg, "read_false_sharing") +
                     numberAt(*agg, "write_true_sharing") +
                     numberAt(*agg, "write_false_sharing");
    summary.sharingMissRate = refs > 0.0 ? sharing / refs : 0.0;
}

// --- grouping ----------------------------------------------------------

/** Accumulator behind one GroupBreakdown. */
struct GroupAcc
{
    std::string key;
    std::vector<std::uint64_t> knees;
    double floorSum = 0.0;
    MissSplit splitSum;
    double sharingSum = 0.0;

    void add(const StudySummary &s)
    {
        knees.push_back(s.largestKneeBytes);
        floorSum += s.floorRate;
        splitSum.cold += s.missSplit.cold;
        splitSum.capacity += s.missSplit.capacity;
        splitSum.trueSharing += s.missSplit.trueSharing;
        splitSum.falseSharing += s.missSplit.falseSharing;
        sharingSum += s.sharingMissRate;
    }

    GroupBreakdown finish() const
    {
        GroupBreakdown g;
        g.key = key;
        g.studies = knees.size();
        std::vector<std::uint64_t> sorted = knees;
        std::sort(sorted.begin(), sorted.end());
        g.kneeMinBytes = sorted.front();
        g.kneeMedianBytes = sorted[(sorted.size() - 1) / 2];
        g.kneeMaxBytes = sorted.back();
        double n = static_cast<double>(sorted.size());
        g.meanFloorRate = floorSum / n;
        g.missSplit.cold = splitSum.cold / n;
        g.missSplit.capacity = splitSum.capacity / n;
        g.missSplit.trueSharing = splitSum.trueSharing / n;
        g.missSplit.falseSharing = splitSum.falseSharing / n;
        g.meanSharingMissRate = sharingSum / n;
        return g;
    }
};

/** First-seen-order grouping (vector scan, never map iteration). */
class Grouper
{
  public:
    void add(const std::string &key, const StudySummary &s)
    {
        for (GroupAcc &acc : accs_) {
            if (acc.key == key) {
                acc.add(s);
                return;
            }
        }
        GroupAcc acc;
        acc.key = key;
        acc.add(s);
        accs_.push_back(std::move(acc));
    }

    std::vector<GroupBreakdown> finish() const
    {
        std::vector<GroupBreakdown> out;
        out.reserve(accs_.size());
        for (const GroupAcc &acc : accs_)
            out.push_back(acc.finish());
        return out;
    }

  private:
    std::vector<GroupAcc> accs_;
};

std::vector<double>
fractionsFit(const std::vector<std::uint64_t> &knees,
             const std::vector<std::uint64_t> &cache_sizes)
{
    std::vector<double> out;
    out.reserve(cache_sizes.size());
    for (std::uint64_t c : cache_sizes) {
        std::size_t fit = 0;
        for (std::uint64_t k : knees)
            fit += k <= c ? 1 : 0;
        out.push_back(static_cast<double>(fit) /
                      static_cast<double>(knees.size()));
    }
    return out;
}

// --- emission ----------------------------------------------------------

void
writeMissSplit(stats::JsonWriter &w, const MissSplit &split)
{
    w.beginObject();
    w.member("cold", split.cold);
    w.member("capacity", split.capacity);
    w.member("true_sharing", split.trueSharing);
    w.member("false_sharing", split.falseSharing);
    w.endObject();
}

void
writeStudy(stats::JsonWriter &w, const StudySummary &s)
{
    w.beginObject();
    w.member("name", s.name);
    w.member("hash", s.hash);
    w.member("status", s.status);
    w.member("preset", s.preset);
    w.member("size", s.size);
    w.member("line_bytes", s.lineBytes);
    w.member("points_per_octave", s.pointsPerOctave);
    w.member("profiler", s.profiler);
    w.member("sampling", s.sampling);
    if (!s.protocol.empty())
        w.member("protocol", s.protocol);
    if (!s.hierarchy.empty())
        w.member("hierarchy", s.hierarchy);
    if (!s.scheduler.empty())
        w.member("scheduler", s.scheduler);
    if (s.hasMetrics()) {
        w.member("num_procs", s.numProcs);
        w.member("floor_rate", s.floorRate);
        w.member("max_footprint_bytes", s.maxFootprintBytes);
        w.member("largest_knee_bytes", s.largestKneeBytes);
        w.key("knees");
        w.beginArray();
        for (const KneeSummary &k : s.knees) {
            w.beginObject();
            w.member("level", k.level);
            w.member("size_bytes", k.sizeBytes);
            w.member("miss_rate_before", k.missRateBefore);
            w.member("miss_rate_after", k.missRateAfter);
            w.endObject();
        }
        w.endArray();
        w.key("miss_split");
        writeMissSplit(w, s.missSplit);
        w.member("sharing_miss_rate", s.sharingMissRate);
    } else {
        w.member("error", s.error);
    }
    w.endObject();
}

void
writeGroups(stats::JsonWriter &w, const char *key,
            const std::vector<GroupBreakdown> &groups)
{
    w.key(key);
    w.beginArray();
    for (const GroupBreakdown &g : groups) {
        w.beginObject();
        w.member("key", g.key);
        w.member("studies", g.studies);
        w.member("knee_min_bytes", g.kneeMinBytes);
        w.member("knee_median_bytes", g.kneeMedianBytes);
        w.member("knee_max_bytes", g.kneeMaxBytes);
        w.member("mean_floor_rate", g.meanFloorRate);
        w.key("miss_split");
        writeMissSplit(w, g.missSplit);
        w.member("mean_sharing_miss_rate", g.meanSharingMissRate);
        w.endObject();
    }
    w.endArray();
}

// --- parsing -----------------------------------------------------------

std::string
parseString(const stats::JsonValue &obj, const char *key)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isString())
        throw CampaignError(std::string("campaign report: missing "
                                        "string '") +
                            key + "'");
    return v->asString();
}

/** "" when absent — for fields only emitted off the axis default. */
std::string
optionalString(const stats::JsonValue &obj, const char *key)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr)
        return "";
    if (!v->isString())
        throw CampaignError(std::string("campaign report: '") + key +
                            "' must be a string");
    return v->asString();
}

double
parseNumber(const stats::JsonValue &obj, const char *key)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        throw CampaignError(std::string("campaign report: missing "
                                        "number '") +
                            key + "'");
    return v->asNumber();
}

std::uint64_t
parseCount(const stats::JsonValue &obj, const char *key)
{
    return static_cast<std::uint64_t>(parseNumber(obj, key));
}

const stats::JsonValue &
parseArray(const stats::JsonValue &obj, const char *key)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isArray())
        throw CampaignError(std::string("campaign report: missing "
                                        "array '") +
                            key + "'");
    return *v;
}

const stats::JsonValue &
parseObject(const stats::JsonValue &obj, const char *key)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isObject())
        throw CampaignError(std::string("campaign report: missing "
                                        "object '") +
                            key + "'");
    return *v;
}

MissSplit
parseMissSplit(const stats::JsonValue &obj)
{
    MissSplit split;
    split.cold = parseNumber(obj, "cold");
    split.capacity = parseNumber(obj, "capacity");
    split.trueSharing = parseNumber(obj, "true_sharing");
    split.falseSharing = parseNumber(obj, "false_sharing");
    return split;
}

std::vector<GroupBreakdown>
parseGroups(const stats::JsonValue &root, const char *key)
{
    std::vector<GroupBreakdown> out;
    const stats::JsonValue &arr = parseArray(root, key);
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const stats::JsonValue &obj = arr[i];
        GroupBreakdown g;
        g.key = parseString(obj, "key");
        g.studies = parseCount(obj, "studies");
        g.kneeMinBytes = parseCount(obj, "knee_min_bytes");
        g.kneeMedianBytes = parseCount(obj, "knee_median_bytes");
        g.kneeMaxBytes = parseCount(obj, "knee_max_bytes");
        g.meanFloorRate = parseNumber(obj, "mean_floor_rate");
        g.missSplit = parseMissSplit(parseObject(obj, "miss_split"));
        g.meanSharingMissRate =
            parseNumber(obj, "mean_sharing_miss_rate");
        out.push_back(std::move(g));
    }
    return out;
}

} // namespace

CampaignReport
buildCampaignReport(const Grid &grid, const CampaignResult &result,
                    bool include_telemetry)
{
    if (grid.entries.size() != result.outcomes.size())
        throw CampaignError("campaign result does not match the grid");

    CampaignReport report;
    report.gridHash = grid.gridHash;
    report.entries = grid.entries.size();

    Grouper by_preset;
    Grouper by_line;
    Grouper by_size;
    std::vector<std::uint64_t> all_knees;
    std::vector<std::uint64_t> band_procs;  // first-seen node counts
    std::vector<std::vector<std::uint64_t>> band_knees;

    for (std::size_t i = 0; i < grid.entries.size(); ++i) {
        const CampaignEntry &entry = grid.entries[i];
        const EntryOutcome &outcome = result.outcomes[i];

        StudySummary s;
        s.name = entry.name;
        s.hash = entry.configHash;
        // A manifest-resumed study is an ok study; the disposition is
        // telemetry, and folding it into status would break the
        // byte-identity of resumed-campaign reports.
        s.status =
            outcome.status == "skipped" ? "ok" : outcome.status;
        s.preset = entry.preset;
        s.size = core::problemSizeName(entry.size);
        s.lineBytes = entry.lineBytes;
        s.pointsPerOctave =
            static_cast<std::uint64_t>(entry.pointsPerOctave);
        s.profiler = memsys::profilerKindName(entry.profiler);
        s.sampling = entry.samplingLabel;
        if (entry.protocol != "write-invalidate")
            s.protocol = entry.protocol;
        if (entry.hierarchy != "single")
            s.hierarchy = entry.hierarchy;
        if (entry.scheduler != "static")
            s.scheduler = entry.scheduler;
        s.error = outcome.error;

        if (s.status == "ok") {
            try {
                summarizePayload(outcome.payload, s);
            } catch (const CampaignError &e) {
                s.status = "error";
                s.error = e.what();
            }
        }
        if (s.status == "ok") {
            ++report.ok;
            by_preset.add(s.preset, s);
            by_line.add("line=" + std::to_string(s.lineBytes), s);
            by_size.add("size=" + s.size, s);
            all_knees.push_back(s.largestKneeBytes);
            std::size_t slot = band_procs.size();
            for (std::size_t p = 0; p < band_procs.size(); ++p)
                if (band_procs[p] == s.numProcs) {
                    slot = p;
                    break;
                }
            if (slot == band_procs.size()) {
                band_procs.push_back(s.numProcs);
                band_knees.emplace_back();
            }
            band_knees[slot].push_back(s.largestKneeBytes);
        } else if (s.status == "failed") {
            ++report.failed;
        } else if (s.status == "timed_out") {
            ++report.timedOut;
        } else if (s.status == "overloaded") {
            ++report.overloaded;
        } else {
            ++report.errors;
        }
        report.studies.push_back(std::move(s));
    }

    report.byPreset = by_preset.finish();
    report.byLineBytes = by_line.finish();
    report.bySize = by_size.finish();

    for (std::uint64_t c = std::uint64_t{1} << 10;
         c <= std::uint64_t{1} << 24; c <<= 1)
        report.bandCacheSizes.push_back(c);
    if (!all_knees.empty()) {
        SustainabilityBand pooled;
        pooled.numProcs = 0;
        pooled.studies = all_knees.size();
        pooled.fractionFit =
            fractionsFit(all_knees, report.bandCacheSizes);
        report.bands.push_back(std::move(pooled));
        for (std::size_t p = 0; p < band_procs.size(); ++p) {
            SustainabilityBand band;
            band.numProcs = band_procs[p];
            band.studies = band_knees[p].size();
            band.fractionFit =
                fractionsFit(band_knees[p], report.bandCacheSizes);
            report.bands.push_back(std::move(band));
        }
    }

    if (include_telemetry) {
        const CampaignTelemetry &tel = result.telemetry;
        report.hasTelemetry = true;
        report.cacheHits = tel.cacheHits;
        report.cacheMisses = tel.cacheMisses;
        report.cacheJoins = tel.cacheJoins;
        report.resumedFromManifest = tel.skipped;
        report.retriedRoundTrips = tel.retriedRoundTrips;
        report.backoffMsTotal = tel.backoffMsTotal;
        report.cacheServedRatio = tel.cacheServedRatio();
        report.p50Seconds = tel.p50Seconds;
        report.p95Seconds = tel.p95Seconds;
    }
    return report;
}

std::string
writeCampaignReport(const CampaignReport &report)
{
    std::ostringstream os;
    stats::JsonWriter w(os);
    w.beginObject();
    w.member("schema", kSchema);
    w.member("grid_hash", report.gridHash);
    w.member("entries", report.entries);
    w.member("ok", report.ok);
    w.member("failed", report.failed);
    w.member("timed_out", report.timedOut);
    w.member("overloaded", report.overloaded);
    w.member("errors", report.errors);
    w.key("studies");
    w.beginArray();
    for (const StudySummary &s : report.studies)
        writeStudy(w, s);
    w.endArray();
    writeGroups(w, "by_preset", report.byPreset);
    writeGroups(w, "by_line_bytes", report.byLineBytes);
    writeGroups(w, "by_size", report.bySize);
    w.key("sustainability");
    w.beginObject();
    w.key("cache_sizes_bytes");
    w.beginArray();
    for (std::uint64_t c : report.bandCacheSizes)
        w.value(c);
    w.endArray();
    w.key("bands");
    w.beginArray();
    for (const SustainabilityBand &band : report.bands) {
        w.beginObject();
        w.member("num_procs", band.numProcs);
        w.member("studies", band.studies);
        w.key("fraction_fit");
        w.beginArray();
        for (double f : band.fractionFit)
            w.value(f);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (report.hasTelemetry) {
        w.key("telemetry");
        w.beginObject();
        w.member("cache_hits", report.cacheHits);
        w.member("cache_misses", report.cacheMisses);
        w.member("cache_joins", report.cacheJoins);
        w.member("resumed_from_manifest", report.resumedFromManifest);
        w.member("retried_round_trips", report.retriedRoundTrips);
        w.member("backoff_ms_total", report.backoffMsTotal);
        w.member("cache_served_ratio", report.cacheServedRatio);
        w.member("p50_seconds", report.p50Seconds);
        w.member("p95_seconds", report.p95Seconds);
        w.endObject();
    }
    w.endObject();
    os << '\n';
    return os.str();
}

CampaignReport
parseCampaignReport(std::string_view json)
{
    stats::JsonValue root;
    try {
        root = stats::parseJson(json);
    } catch (const stats::JsonParseError &e) {
        throw CampaignError(std::string("campaign report: ") +
                            e.what());
    }
    if (!root.isObject())
        throw CampaignError("campaign report: not a JSON object");
    if (parseString(root, "schema") != kSchema)
        throw CampaignError("campaign report: schema must be \"" +
                            std::string(kSchema) + "\"");

    CampaignReport report;
    report.gridHash = parseString(root, "grid_hash");
    report.entries = parseCount(root, "entries");
    report.ok = parseCount(root, "ok");
    report.failed = parseCount(root, "failed");
    report.timedOut = parseCount(root, "timed_out");
    report.overloaded = parseCount(root, "overloaded");
    report.errors = parseCount(root, "errors");

    const stats::JsonValue &studies = parseArray(root, "studies");
    for (std::size_t i = 0; i < studies.size(); ++i) {
        const stats::JsonValue &obj = studies[i];
        StudySummary s;
        s.name = parseString(obj, "name");
        s.hash = parseString(obj, "hash");
        s.status = parseString(obj, "status");
        s.preset = parseString(obj, "preset");
        s.size = parseString(obj, "size");
        s.lineBytes = parseCount(obj, "line_bytes");
        s.pointsPerOctave = parseCount(obj, "points_per_octave");
        s.profiler = parseString(obj, "profiler");
        s.sampling = parseString(obj, "sampling");
        s.protocol = optionalString(obj, "protocol");
        s.hierarchy = optionalString(obj, "hierarchy");
        s.scheduler = optionalString(obj, "scheduler");
        if (s.hasMetrics()) {
            s.numProcs = parseCount(obj, "num_procs");
            s.floorRate = parseNumber(obj, "floor_rate");
            s.maxFootprintBytes =
                parseCount(obj, "max_footprint_bytes");
            s.largestKneeBytes =
                parseCount(obj, "largest_knee_bytes");
            const stats::JsonValue &knees = parseArray(obj, "knees");
            for (std::size_t k = 0; k < knees.size(); ++k) {
                const stats::JsonValue &kobj = knees[k];
                KneeSummary knee;
                knee.level = parseCount(kobj, "level");
                knee.sizeBytes = parseCount(kobj, "size_bytes");
                knee.missRateBefore =
                    parseNumber(kobj, "miss_rate_before");
                knee.missRateAfter =
                    parseNumber(kobj, "miss_rate_after");
                s.knees.push_back(knee);
            }
            s.missSplit =
                parseMissSplit(parseObject(obj, "miss_split"));
            s.sharingMissRate = parseNumber(obj, "sharing_miss_rate");
        } else {
            s.error = parseString(obj, "error");
        }
        report.studies.push_back(std::move(s));
    }

    report.byPreset = parseGroups(root, "by_preset");
    report.byLineBytes = parseGroups(root, "by_line_bytes");
    report.bySize = parseGroups(root, "by_size");

    const stats::JsonValue &sus = parseObject(root, "sustainability");
    const stats::JsonValue &sizes =
        parseArray(sus, "cache_sizes_bytes");
    for (std::size_t i = 0; i < sizes.size(); ++i)
        report.bandCacheSizes.push_back(
            static_cast<std::uint64_t>(sizes[i].asNumber()));
    const stats::JsonValue &bands = parseArray(sus, "bands");
    for (std::size_t i = 0; i < bands.size(); ++i) {
        const stats::JsonValue &obj = bands[i];
        SustainabilityBand band;
        band.numProcs = parseCount(obj, "num_procs");
        band.studies = parseCount(obj, "studies");
        const stats::JsonValue &fit = parseArray(obj, "fraction_fit");
        for (std::size_t f = 0; f < fit.size(); ++f)
            band.fractionFit.push_back(fit[f].asNumber());
        report.bands.push_back(std::move(band));
    }

    if (const stats::JsonValue *tel = root.find("telemetry")) {
        report.hasTelemetry = true;
        report.cacheHits = parseCount(*tel, "cache_hits");
        report.cacheMisses = parseCount(*tel, "cache_misses");
        report.cacheJoins = parseCount(*tel, "cache_joins");
        report.resumedFromManifest =
            parseCount(*tel, "resumed_from_manifest");
        report.retriedRoundTrips =
            parseCount(*tel, "retried_round_trips");
        report.backoffMsTotal = parseCount(*tel, "backoff_ms_total");
        report.cacheServedRatio =
            parseNumber(*tel, "cache_served_ratio");
        report.p50Seconds = parseNumber(*tel, "p50_seconds");
        report.p95Seconds = parseNumber(*tel, "p95_seconds");
    }
    return report;
}

} // namespace wsg::campaign
