/**
 * @file
 * Campaign driver: push an expanded grid through wsg-served with
 * bounded client concurrency, checkpointing every completion.
 *
 * The driver is a thin fleet client over the existing wire protocol:
 * N worker threads each hold one connection to the daemon and pull
 * entries off a shared atomic cursor, so at most N studies are in
 * flight from this campaign no matter how large the grid is. Typed
 * "overloaded" rejections are retried with the shared deterministic
 * backoff (serve/backoff.hh), seeded per entry by its config hash so
 * colliding workers decorrelate; per-study timeouts ride in the
 * request and surface as "timed_out" outcomes, not client hangs.
 *
 * Resumability is layered:
 *  - the **manifest** (campaign/manifest.hh) records completions; on
 *    restart, entries with an ok record and a readable payload are
 *    skipped outright ("skipped" outcome), and the report aggregates
 *    from the saved bytes;
 *  - studies the manifest missed are resubmitted, where the daemon's
 *    content-addressed cache answers them as hits — kill -9 at any
 *    point costs at most the in-flight studies' compute.
 *
 * Every payload is verified against the entry's precomputed config
 * hash before it is trusted; a daemon answering with the wrong bytes
 * is an error, not a silent corruption of the aggregate.
 */

#ifndef WSG_CAMPAIGN_DRIVER_HH
#define WSG_CAMPAIGN_DRIVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/grid.hh"
#include "campaign/manifest.hh"
#include "serve/backoff.hh"

namespace wsg::campaign
{

/** How the campaign driver runs one sweep. */
struct DriverConfig
{
    /** Unix-domain socket of the serving daemon. */
    std::string socketPath;
    /** Concurrent client connections (clamped to >= 1). */
    unsigned concurrency = 4;
    /** Typed-overload retry policy, shared with wsg-submit. */
    serve::RetryPolicy retry{.retries = 8,
                             .baseBackoffMs = 50,
                             .maxBackoffMs = 5000};
    /** Checkpoint manifest path ("" = no checkpointing). */
    std::string manifestPath;
    /** Payload store directory ("" = keep payloads in memory only). */
    std::string resultsDir;
    /** Optional per-completion progress hook (serialized). */
    std::function<void(const std::string &name,
                       const std::string &status, std::size_t done,
                       std::size_t total)>
        progress;
};

/** Result of one grid entry after the campaign ran. */
struct EntryOutcome
{
    /** "ok", "skipped" (manifest), "overloaded", "failed",
     *  "timed_out" or "error". */
    std::string status;
    /** "hit", "miss", "join" from the daemon, or "manifest". */
    std::string cache;
    /** Report JSON (ok/skipped outcomes; verified against the entry
     *  hash). */
    std::string payload;
    std::string error;
    unsigned attempts = 1;
    std::uint64_t backoffMs = 0;
};

/** Campaign-level fleet telemetry. */
struct CampaignTelemetry
{
    std::uint64_t ok = 0;
    /** Resumed straight off the manifest, no daemon round trip. */
    std::uint64_t skipped = 0;
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t errors = 0;
    /** Daemon cache dispositions over the non-skipped entries. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheJoins = 0;
    std::uint64_t retriedRoundTrips = 0;
    std::uint64_t backoffMsTotal = 0;
    /** Client-observed per-study service time quantiles, seconds. */
    double p50Seconds = 0.0;
    double p95Seconds = 0.0;
    /** The daemon's final /stats JSON ("" if unavailable). */
    std::string serverStats;

    /** Entries answered from a cache layer (daemon or manifest)
     *  divided by all completed entries; 0 when nothing completed. */
    double cacheServedRatio() const
    {
        std::uint64_t served = skipped + cacheHits + cacheJoins;
        std::uint64_t total = served + cacheMisses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(served) /
                         static_cast<double>(total);
    }
};

/** Everything runCampaign produces. */
struct CampaignResult
{
    /** One outcome per grid entry, in grid order. */
    std::vector<EntryOutcome> outcomes;
    CampaignTelemetry telemetry;
};

/**
 * Run @p grid against the daemon per @p config. Blocks until every
 * entry has an outcome; individual study failures become outcomes,
 * not exceptions.
 * @throws CampaignError when the manifest is incompatible or cannot
 *         be written.
 */
CampaignResult runCampaign(const Grid &grid,
                           const DriverConfig &config);

} // namespace wsg::campaign

#endif // WSG_CAMPAIGN_DRIVER_HH
