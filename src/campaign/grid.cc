#include "campaign/grid.hh"

#include <fstream>
#include <sstream>

#include "memsys/hierarchy.hh"
#include "replay/scheduler.hh"
#include "sim/coherence.hh"
#include "stats/hash.hh"
#include "stats/json_parse.hh"
#include "stats/json_report.hh"

namespace wsg::campaign
{

namespace
{

/** The known top-level grid keys; anything else is a typo. */
constexpr const char *kGridKeys[] = {
    "schema",           "presets",  "sizes",
    "line_bytes",       "points_per_octave",
    "profilers",        "sampling", "protocols",
    "hierarchies",      "schedulers",
    "include",          "exclude",
    "analyze_races",    "timeout_seconds",
};

const stats::JsonValue *
arrayField(const stats::JsonValue &root, const char *key)
{
    const stats::JsonValue *v = root.find(key);
    if (v == nullptr)
        return nullptr;
    if (!v->isArray())
        throw CampaignError(std::string("grid field '") + key +
                            "' must be an array");
    if (v->size() == 0)
        throw CampaignError(std::string("grid field '") + key +
                            "' must not be empty");
    return v;
}

std::vector<std::string>
stringArray(const stats::JsonValue &root, const char *key)
{
    std::vector<std::string> out;
    const stats::JsonValue *v = arrayField(root, key);
    if (v == nullptr)
        return out;
    for (std::size_t i = 0; i < v->size(); ++i) {
        if (!(*v)[i].isString())
            throw CampaignError(std::string("grid field '") + key +
                                "' must hold strings");
        out.push_back((*v)[i].asString());
    }
    return out;
}

std::vector<double>
numberArray(const stats::JsonValue &root, const char *key)
{
    std::vector<double> out;
    const stats::JsonValue *v = arrayField(root, key);
    if (v == nullptr)
        return out;
    for (std::size_t i = 0; i < v->size(); ++i) {
        if (!(*v)[i].isNumber())
            throw CampaignError(std::string("grid field '") + key +
                                "' must hold numbers");
        out.push_back((*v)[i].asNumber());
    }
    return out;
}

/** Wrap axis-value parse errors with the field name. */
template <typename Fn>
auto
axisValue(const char *key, const std::string &value, Fn &&parse)
{
    try {
        return parse(value);
    } catch (const std::invalid_argument &e) {
        throw CampaignError(std::string("grid field '") + key +
                            "': " + e.what());
    }
}

} // namespace

SamplingPoint
parseSamplingPoint(const std::string &text)
{
    SamplingPoint point;
    if (text == "exact") {
        point.label = "exact";
        return point;
    }
    auto numberTail = [&text](std::string_view prefix) {
        return text.substr(prefix.size());
    };
    if (text.rfind("rate:", 0) == 0) {
        std::string tail = numberTail("rate:");
        std::size_t pos = 0;
        double rate = 0.0;
        try {
            rate = std::stod(tail, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        if (pos != tail.size() || !(rate > 0.0 && rate <= 1.0))
            throw CampaignError(
                "sampling 'rate:' needs a rate in (0, 1], got '" +
                text + "'");
        point.config.mode = approx::SamplingMode::FixedRate;
        point.config.rate = rate;
        point.label = "rate:" + stats::JsonWriter::formatDouble(rate);
        return point;
    }
    if (text.rfind("size:", 0) == 0) {
        std::string tail = numberTail("size:");
        std::size_t pos = 0;
        unsigned long long lines = 0;
        try {
            lines = std::stoull(tail, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        if (pos != tail.size() || lines == 0)
            throw CampaignError(
                "sampling 'size:' needs a positive line budget, "
                "got '" +
                text + "'");
        point.config.mode = approx::SamplingMode::FixedSize;
        point.config.maxLines = lines;
        point.label = "size:" + std::to_string(lines);
        return point;
    }
    throw CampaignError("unknown sampling mode '" + text +
                        "' (expected exact, rate:R or size:N)");
}

GridSpec
parseGridSpec(std::string_view json)
{
    stats::JsonValue root;
    try {
        root = stats::parseJson(json);
    } catch (const stats::JsonParseError &e) {
        throw CampaignError(std::string("grid file: ") + e.what());
    }
    if (!root.isObject())
        throw CampaignError("grid file: not a JSON object");

    for (const auto &[key, value] : root.members()) {
        bool known = false;
        for (const char *k : kGridKeys)
            known = known || key == k;
        if (!known)
            throw CampaignError("grid file: unknown key '" + key +
                                "'");
    }

    const stats::JsonValue *schema = root.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != "wsg-campaign-grid-v1")
        throw CampaignError(
            "grid file: schema must be \"wsg-campaign-grid-v1\"");

    GridSpec spec;
    spec.presets = stringArray(root, "presets");
    for (const std::string &preset : spec.presets) {
        if (!core::isFigureSuiteName(preset))
            throw CampaignError("grid file: unknown preset '" +
                                preset + "'");
    }

    std::vector<std::string> sizes = stringArray(root, "sizes");
    if (!sizes.empty()) {
        spec.sizes.clear();
        for (const std::string &s : sizes)
            spec.sizes.push_back(axisValue(
                "sizes", s, [](const std::string &v) {
                    return core::parseProblemSize(v);
                }));
    }

    std::vector<double> lines = numberArray(root, "line_bytes");
    if (!lines.empty()) {
        spec.lineBytes.clear();
        for (double v : lines) {
            if (v < 0.0 || v != static_cast<double>(
                                    static_cast<std::uint32_t>(v)))
                throw CampaignError(
                    "grid field 'line_bytes' must hold non-negative "
                    "integers");
            spec.lineBytes.push_back(static_cast<std::uint32_t>(v));
        }
    }

    std::vector<double> ppo = numberArray(root, "points_per_octave");
    if (!ppo.empty()) {
        spec.pointsPerOctave.clear();
        for (double v : ppo) {
            if (v < 0.0 || v > 64.0 ||
                v != static_cast<double>(static_cast<int>(v)))
                throw CampaignError(
                    "grid field 'points_per_octave' must hold "
                    "integers in [0, 64]");
            spec.pointsPerOctave.push_back(static_cast<int>(v));
        }
    }

    std::vector<std::string> profilers =
        stringArray(root, "profilers");
    if (!profilers.empty()) {
        spec.profilers.clear();
        for (const std::string &p : profilers)
            spec.profilers.push_back(axisValue(
                "profilers", p, [](const std::string &v) {
                    return memsys::parseProfilerKind(v);
                }));
    }

    std::vector<std::string> sampling = stringArray(root, "sampling");
    if (!sampling.empty()) {
        spec.sampling.clear();
        for (const std::string &s : sampling)
            spec.sampling.push_back(parseSamplingPoint(s));
    }

    std::vector<std::string> protocols =
        stringArray(root, "protocols");
    if (!protocols.empty()) {
        spec.protocols.clear();
        for (const std::string &p : protocols)
            // Normalize short forms so "wi" and "write-invalidate"
            // label (and hash) identically.
            spec.protocols.push_back(axisValue(
                "protocols", p, [](const std::string &v) {
                    return std::string(sim::coherenceProtocolName(
                        sim::parseCoherenceProtocol(v)));
                }));
    }

    std::vector<std::string> hierarchies =
        stringArray(root, "hierarchies");
    if (!hierarchies.empty()) {
        spec.hierarchies.clear();
        for (const std::string &h : hierarchies)
            spec.hierarchies.push_back(axisValue(
                "hierarchies", h, [](const std::string &v) {
                    return memsys::hierarchyLabel(
                        memsys::parseHierarchySpec(v));
                }));
    }

    std::vector<std::string> schedulers =
        stringArray(root, "schedulers");
    if (!schedulers.empty()) {
        spec.schedulers.clear();
        for (const std::string &s : schedulers)
            // Normalize aliases so "rr" and "round-robin" label (and
            // hash) identically, like the protocols axis.
            spec.schedulers.push_back(axisValue(
                "schedulers", s, [](const std::string &v) {
                    return replay::schedulerSpecLabel(
                        replay::parseSchedulerSpec(v));
                }));
    }

    spec.include = stringArray(root, "include");
    spec.exclude = stringArray(root, "exclude");

    if (const stats::JsonValue *v = root.find("analyze_races")) {
        if (!v->isBool())
            throw CampaignError(
                "grid field 'analyze_races' must be a bool");
        spec.analyzeRaces = v->asBool();
    }
    if (const stats::JsonValue *v = root.find("timeout_seconds")) {
        if (!v->isNumber() || v->asNumber() < 0.0)
            throw CampaignError("grid field 'timeout_seconds' must be "
                                "a non-negative number");
        spec.timeoutSeconds = v->asNumber();
    }
    return spec;
}

GridSpec
loadGridSpec(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CampaignError("cannot read grid file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseGridSpec(text.str());
}

namespace
{

/** One machine-axis point of the sweep
 *  (protocol × hierarchy × scheduler). */
struct MachinePoint
{
    std::string protocol;
    std::string hierarchy;
    std::string scheduler;
};

/** The protocol × hierarchy × scheduler cross product, sweep order. */
std::vector<MachinePoint>
machinePoints(const GridSpec &spec)
{
    std::vector<MachinePoint> out;
    for (const std::string &proto : spec.protocols)
        for (const std::string &hier : spec.hierarchies)
            for (const std::string &sched : spec.schedulers)
                out.push_back({proto, hier, sched});
    return out;
}

} // namespace

Grid
expandGrid(const GridSpec &spec)
{
    std::vector<std::string> presets =
        spec.presets.empty() ? core::figureSuiteNames() : spec.presets;
    std::vector<MachinePoint> machines = machinePoints(spec);

    Grid grid;
    std::string hashInput = "wsg-campaign-grid-v1\n";
    for (const std::string &preset : presets) {
        for (core::ProblemSize size : spec.sizes) {
            for (std::uint32_t line : spec.lineBytes) {
                for (int ppo : spec.pointsPerOctave) {
                    for (memsys::ProfilerKind prof : spec.profilers) {
                        for (const SamplingPoint &samp :
                             spec.sampling) {
                          for (const MachinePoint &mach : machines) {
                            // AET has no per-line stack state to
                            // sample from; the combination is
                            // infeasible, not an error — a grid that
                            // sweeps both axes simply skips it.
                            if (prof == memsys::ProfilerKind::Aet &&
                                samp.config.enabled()) {
                                ++grid.skippedInfeasible;
                                continue;
                            }

                            CampaignEntry entry;
                            entry.preset = preset;
                            entry.size = size;
                            entry.lineBytes = line;
                            entry.pointsPerOctave = ppo;
                            entry.profiler = prof;
                            entry.samplingLabel = samp.label;
                            entry.protocol = mach.protocol;
                            entry.hierarchy = mach.hierarchy;
                            entry.scheduler = mach.scheduler;

                            core::SuiteVariant variant;
                            variant.size = size;
                            variant.lineBytes = line;
                            serve::Request &req = entry.request;
                            req.op = serve::Op::Study;
                            req.preset = core::suiteVariantName(
                                preset, variant);
                            if (prof !=
                                memsys::ProfilerKind::TreeMattson)
                                req.profiler =
                                    memsys::profilerKindName(prof);
                            if (ppo != 0)
                                req.pointsPerOctave = ppo;
                            if (samp.config.mode ==
                                approx::SamplingMode::FixedRate)
                                req.sampleRate = samp.config.rate;
                            if (samp.config.mode ==
                                approx::SamplingMode::FixedSize)
                                req.sampleSize = samp.config.maxLines;
                            if (mach.protocol != "write-invalidate")
                                req.protocol = mach.protocol;
                            if (mach.hierarchy != "single")
                                req.hierarchy = mach.hierarchy;
                            if (mach.scheduler != "static")
                                req.scheduler = mach.scheduler;
                            req.analyzeRaces = spec.analyzeRaces;
                            req.timeoutSeconds = spec.timeoutSeconds;

                            entry.name = req.preset;
                            if (ppo != 0)
                                entry.name +=
                                    "@ppo=" + std::to_string(ppo);
                            if (prof !=
                                memsys::ProfilerKind::TreeMattson)
                                entry.name +=
                                    std::string("@prof=") +
                                    memsys::profilerKindName(prof);
                            if (samp.label != "exact")
                                entry.name += "@samp=" + samp.label;
                            if (mach.protocol != "write-invalidate")
                                entry.name +=
                                    "@proto=" + mach.protocol;
                            if (mach.hierarchy != "single")
                                entry.name +=
                                    "@hier=" + mach.hierarchy;
                            if (mach.scheduler != "static")
                                entry.name +=
                                    "@sched=" + mach.scheduler;

                            bool kept = spec.include.empty();
                            for (const std::string &inc :
                                 spec.include)
                                kept = kept ||
                                       entry.name.find(inc) !=
                                           std::string::npos;
                            for (const std::string &exc :
                                 spec.exclude)
                                kept = kept &&
                                       entry.name.find(exc) ==
                                           std::string::npos;
                            if (!kept) {
                                ++grid.filteredOut;
                                continue;
                            }

                            // Resolve the point through the same
                            // factory the daemon uses: the canonical
                            // config's hash is the cache key, known
                            // before anything is submitted.
                            core::StudyJob job;
                            try {
                                job = core::figureSuiteJob(
                                    req.preset, req.studyConfig());
                            } catch (const std::exception &e) {
                                throw CampaignError(
                                    "grid point '" + entry.name +
                                    "' is invalid: " + e.what());
                            }
                            entry.configHash =
                                stats::fnv1a64Hex(job.canonicalConfig);

                            hashInput += entry.name + "=" +
                                         entry.configHash + "\n";
                            grid.entries.push_back(std::move(entry));
                          }
                        }
                    }
                }
            }
        }
    }
    grid.gridHash = stats::fnv1a64Hex(hashInput);
    return grid;
}

} // namespace wsg::campaign
