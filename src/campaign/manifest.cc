#include "campaign/manifest.hh"

#include <sstream>

#include "stats/json_parse.hh"
#include "stats/json_report.hh"

namespace wsg::campaign
{

namespace
{

constexpr const char *kSchema = "wsg-campaign-manifest-v1";

std::string
stringField(const stats::JsonValue &obj, const char *key)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isString())
        return "";
    return v->asString();
}

std::uint64_t
countField(const stats::JsonValue &obj, const char *key,
           std::uint64_t fallback)
{
    const stats::JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber() || v->asNumber() < 0.0)
        return fallback;
    return static_cast<std::uint64_t>(v->asNumber());
}

} // namespace

ManifestContents
loadManifest(const std::string &path)
{
    ManifestContents contents;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return contents; // No file yet: a fresh campaign.

    std::string line;
    if (!std::getline(in, line))
        return contents; // Empty file behaves like a fresh one.

    stats::JsonValue header;
    try {
        header = stats::parseJson(line);
    } catch (const stats::JsonParseError &e) {
        throw CampaignError("manifest " + path +
                            ": bad header: " + e.what());
    }
    if (!header.isObject() || stringField(header, "schema") != kSchema)
        throw CampaignError("manifest " + path +
                            ": header schema must be \"" +
                            std::string(kSchema) + "\"");
    contents.gridHash = stringField(header, "grid_hash");

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        stats::JsonValue rec;
        try {
            rec = stats::parseJson(line);
        } catch (const stats::JsonParseError &) {
            // A torn tail line is the expected shape of a crash
            // mid-append; everything before it is still good.
            break;
        }
        if (!rec.isObject())
            break;
        ManifestRecord record;
        record.hash = stringField(rec, "hash");
        record.name = stringField(rec, "name");
        record.status = stringField(rec, "status");
        record.cache = stringField(rec, "cache");
        record.payloadBytes = countField(rec, "payload_bytes", 0);
        record.attempts = countField(rec, "attempts", 1);
        record.error = stringField(rec, "error");
        if (record.hash.empty() || record.status.empty())
            break;
        contents.records[record.hash] = std::move(record);
    }
    return contents;
}

ManifestWriter::ManifestWriter(const std::string &path,
                               const std::string &grid_hash,
                               std::uint64_t entries)
    : path_(path)
{
    // An existing manifest must describe the same grid; replaying a
    // checkpoint from a different sweep would silently skip studies
    // whose hashes happen to collide in name but not in content.
    ManifestContents existing = loadManifest(path);
    if (!existing.gridHash.empty() && existing.gridHash != grid_hash)
        throw CampaignError(
            "manifest " + path + " was written for grid " +
            existing.gridHash + ", not " + grid_hash +
            " (delete it or pass a fresh --manifest path)");

    bool fresh = existing.gridHash.empty();
    out_.open(path, std::ios::binary | std::ios::app);
    if (!out_)
        throw CampaignError("cannot open manifest for append: " + path);
    if (fresh) {
        std::ostringstream os;
        stats::JsonWriter w(os, /*compact=*/true);
        w.beginObject();
        w.member("schema", kSchema);
        w.member("grid_hash", grid_hash);
        w.member("entries", entries);
        w.endObject();
        out_ << os.str() << '\n';
        out_.flush();
        if (!out_)
            throw CampaignError("manifest write failed: " + path);
    }
}

std::string
ManifestWriter::encodeRecord(const ManifestRecord &record)
{
    std::ostringstream os;
    stats::JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.member("hash", record.hash);
    w.member("name", record.name);
    w.member("status", record.status);
    w.member("cache", record.cache);
    w.member("payload_bytes", record.payloadBytes);
    w.member("attempts", record.attempts);
    if (!record.error.empty())
        w.member("error", record.error);
    w.endObject();
    os << '\n';
    return os.str();
}

void
ManifestWriter::append(const ManifestRecord &record)
{
    out_ << encodeRecord(record);
    out_.flush();
    if (!out_)
        throw CampaignError("manifest write failed: " + path_);
}

} // namespace wsg::campaign
