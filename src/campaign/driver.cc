#include "campaign/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include <cerrno>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/protocol.hh"

namespace wsg::campaign
{

namespace
{

void
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return;
    throw CampaignError("cannot create results dir " + path + ": " +
                        std::strerror(errno));
}

std::string
payloadPath(const std::string &dir, const std::string &hash)
{
    return dir + "/" + hash + ".json";
}

/** Durable single-file write: tmp + rename, the same discipline the
 *  daemon's disk tier uses. */
void
savePayload(const std::string &dir, const std::string &hash,
            const std::string &payload)
{
    std::string final_path = payloadPath(dir, hash);
    std::string tmp_path = final_path + ".tmp";
    {
        std::ofstream out(tmp_path,
                          std::ios::binary | std::ios::trunc);
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        out.flush();
        if (!out)
            throw CampaignError("cannot write " + tmp_path);
    }
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
        throw CampaignError("cannot rename " + tmp_path + ": " +
                            std::strerror(errno));
}

/** Read a saved payload; empty optional when absent or wrong-sized. */
bool
loadPayload(const std::string &dir, const std::string &hash,
            std::uint64_t expected_bytes, std::string &payload)
{
    std::ifstream in(payloadPath(dir, hash), std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    payload = text.str();
    return expected_bytes == 0 || payload.size() == expected_bytes;
}

std::string
statusOf(const serve::ResponseHeader &header)
{
    if (header.status == "ok")
        return "ok";
    if (header.status == "overloaded")
        return "overloaded";
    if (header.status == "failed")
        return header.timedOut ? "timed_out" : "failed";
    return "error"; // bad_request, shutting_down, anything future.
}

/** Shared per-campaign state the workers append into. */
struct SharedState
{
    std::mutex m;
    ManifestWriter *manifest = nullptr;
    std::vector<double> latencySeconds;
    std::size_t done = 0;
};

} // namespace

CampaignResult
runCampaign(const Grid &grid, const DriverConfig &config)
{
    CampaignResult result;
    result.outcomes.resize(grid.entries.size());
    if (!config.resultsDir.empty())
        ensureDir(config.resultsDir);

    // Resume pass: outcomes the checkpoint already settled.
    ManifestContents prior;
    if (!config.manifestPath.empty())
        prior = loadManifest(config.manifestPath);

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < grid.entries.size(); ++i) {
        const CampaignEntry &entry = grid.entries[i];
        auto it = prior.records.find(entry.configHash);
        if (it != prior.records.end() && it->second.status == "ok" &&
            !config.resultsDir.empty()) {
            EntryOutcome &out = result.outcomes[i];
            if (loadPayload(config.resultsDir, entry.configHash,
                            it->second.payloadBytes, out.payload)) {
                out.status = "skipped";
                out.cache = "manifest";
                continue;
            }
            out.payload.clear(); // Stale or torn file: resubmit.
        }
        pending.push_back(i);
    }

    ManifestWriter manifest_storage =
        config.manifestPath.empty()
            ? ManifestWriter("/dev/null", grid.gridHash,
                             grid.entries.size())
            : ManifestWriter(config.manifestPath, grid.gridHash,
                             grid.entries.size());

    SharedState shared;
    shared.done = grid.entries.size() - pending.size();
    if (!config.manifestPath.empty())
        shared.manifest = &manifest_storage;

    std::atomic<std::size_t> cursor{0};
    unsigned workers = std::max(1u, config.concurrency);
    workers = static_cast<unsigned>(std::min<std::size_t>(
        workers, std::max<std::size_t>(1, pending.size())));

    auto worker = [&] {
        int fd = -1;
        auto ensureConnected = [&] {
            if (fd < 0)
                fd = serve::connectUnix(config.socketPath);
        };
        for (;;) {
            std::size_t slot = cursor.fetch_add(1);
            if (slot >= pending.size())
                break;
            std::size_t idx = pending[slot];
            const CampaignEntry &entry = grid.entries[idx];
            EntryOutcome &out = result.outcomes[idx];

            serve::Reply reply;
            serve::RetryOutcome retried;
            bool transport_ok = false;
            std::string transport_error;
            auto t0 = std::chrono::steady_clock::now();
            // One reconnect: a daemon restart mid-campaign drops every
            // held connection once, and should cost one retry, not one
            // failed study per worker.
            for (int attempt = 0; attempt < 2 && !transport_ok;
                 ++attempt) {
                try {
                    ensureConnected();
                    reply = serve::roundTripWithRetry(
                        fd, entry.request, config.retry,
                        serve::retrySeedKey(entry.configHash),
                        &retried);
                    transport_ok = true;
                } catch (const serve::ProtocolError &e) {
                    transport_error = e.what();
                    if (fd >= 0)
                        ::close(fd);
                    fd = -1;
                }
            }
            double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            out.attempts = retried.attempts;
            out.backoffMs = retried.backoffMs;
            if (!transport_ok) {
                out.status = "error";
                out.error = transport_error;
            } else {
                out.status = statusOf(reply.header);
                out.cache = reply.header.cache;
                out.error = reply.header.error;
                if (out.status == "ok") {
                    if (reply.header.hash != entry.configHash) {
                        // The daemon resolved the same preset to a
                        // different canonical config — a version skew
                        // that would silently aggregate wrong data.
                        out.status = "error";
                        out.error = "config hash mismatch: expected " +
                                    entry.configHash + ", daemon has " +
                                    reply.header.hash;
                    } else {
                        out.payload = std::move(reply.payload);
                        if (!config.resultsDir.empty())
                            savePayload(config.resultsDir,
                                        entry.configHash, out.payload);
                    }
                }
            }

            ManifestRecord record;
            record.hash = entry.configHash;
            record.name = entry.name;
            record.status = out.status;
            record.cache = out.cache;
            record.payloadBytes = out.payload.size();
            record.attempts = out.attempts;
            record.error = out.error;

            std::lock_guard<std::mutex> lock(shared.m);
            if (shared.manifest != nullptr)
                shared.manifest->append(record);
            shared.latencySeconds.push_back(elapsed);
            ++shared.done;
            if (config.progress)
                config.progress(entry.name, out.status, shared.done,
                                grid.entries.size());
        }
        if (fd >= 0)
            ::close(fd);
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    CampaignTelemetry &tel = result.telemetry;
    for (const EntryOutcome &out : result.outcomes) {
        if (out.status == "ok")
            ++tel.ok;
        else if (out.status == "skipped")
            ++tel.skipped;
        else if (out.status == "failed")
            ++tel.failed;
        else if (out.status == "timed_out")
            ++tel.timedOut;
        else if (out.status == "overloaded")
            ++tel.overloaded;
        else
            ++tel.errors;
        if (out.cache == "hit")
            ++tel.cacheHits;
        else if (out.cache == "miss")
            ++tel.cacheMisses;
        else if (out.cache == "join")
            ++tel.cacheJoins;
        if (out.attempts > 1)
            ++tel.retriedRoundTrips;
        tel.backoffMsTotal += out.backoffMs;
    }
    std::vector<double> window = std::move(shared.latencySeconds);
    if (!window.empty()) {
        std::sort(window.begin(), window.end());
        auto at = [&window](double q) {
            std::size_t idx = static_cast<std::size_t>(
                q * static_cast<double>(window.size() - 1));
            return window[idx];
        };
        tel.p50Seconds = at(0.50);
        tel.p95Seconds = at(0.95);
    }

    // Final fleet snapshot from the daemon's own counters, so the
    // campaign can assert cache behaviour (resume = hits) end to end.
    try {
        int fd = serve::connectUnix(config.socketPath);
        serve::Request stats_req;
        stats_req.op = serve::Op::Stats;
        serve::Reply reply = serve::roundTrip(fd, stats_req);
        ::close(fd);
        if (reply.header.status == "ok")
            tel.serverStats = std::move(reply.payload);
    } catch (const serve::ProtocolError &) {
        // Telemetry only; a vanished daemon does not fail a finished
        // campaign.
    }
    return result;
}

} // namespace wsg::campaign
