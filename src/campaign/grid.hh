/**
 * @file
 * Declarative sweep grids → canonical study populations.
 *
 * A campaign starts from a small JSON grid file (wsg-campaign-grid-v1)
 * naming the axis values to sweep — suite presets × problem sizes ×
 * line sizes × sweep resolutions × profilers × sampling modes ×
 * coherence protocols × node hierarchies × replay schedulers — plus
 * include/exclude filters. expandGrid() takes the cross product,
 * drops infeasible combinations (the AET profiler cannot be combined
 * with sampling), applies the filters, and resolves every surviving
 * point through core::figureSuiteJob to its canonical config and
 * content hash — the *same* factory and hash the serving daemon uses,
 * so a campaign entry's hash is its cache key by construction, before
 * anything has been submitted.
 *
 * Grid file format (all axis fields optional; defaults in brackets):
 *
 *   {"schema": "wsg-campaign-grid-v1",
 *    "presets": ["fig2-lu-B16", ...],        // [all 14 suite presets]
 *    "sizes": ["small", "base", "large"],    // ["base"]
 *    "line_bytes": [16, 32],                 // [0] = preset default
 *    "points_per_octave": [4, 2],            // [0] = study default
 *    "profilers": ["tree-mattson", "aet"],   // ["tree-mattson"]
 *    "sampling": ["exact", "rate:0.1", "size:4096"],  // ["exact"]
 *    "protocols": ["msi", "mesi", "mi"],     // ["write-invalidate"]
 *    "hierarchies": ["single", "incl:4096:65536"],    // ["single"]
 *    "schedulers": ["static", "rr", "steal:r0.25:s1"],// ["static"]
 *    "include": ["fig2"], "exclude": ["B64"],         // name substrings
 *    "analyze_races": false,
 *    "timeout_seconds": 0}
 *
 * Unknown top-level keys are rejected — a typo'd axis name silently
 * falling back to its default would corrupt a thousand-study sweep.
 */

#ifndef WSG_CAMPAIGN_GRID_HH
#define WSG_CAMPAIGN_GRID_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "approx/sampling.hh"
#include "core/suite.hh"
#include "memsys/profiler.hh"
#include "serve/protocol.hh"

namespace wsg::campaign
{

/** Malformed grid file, manifest, or aggregation input. */
class CampaignError : public std::runtime_error
{
  public:
    explicit CampaignError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One sampling-axis point with its stable label. */
struct SamplingPoint
{
    approx::SamplingConfig config{};
    /** "exact", "rate:R" or "size:N" — the grid-file spelling. */
    std::string label = "exact";
};

/** Parse a sampling-axis spelling ("exact" | "rate:R" | "size:N").
 *  @throws CampaignError on malformed input. */
SamplingPoint parseSamplingPoint(const std::string &text);

/** The declarative axes of a sweep. */
struct GridSpec
{
    /** Bare suite preset names; empty = the whole suite. */
    std::vector<std::string> presets;
    std::vector<core::ProblemSize> sizes{core::ProblemSize::Base};
    /** 0 = the preset's canonical line size. */
    std::vector<std::uint32_t> lineBytes{0};
    /** 0 = the study default resolution. */
    std::vector<int> pointsPerOctave{0};
    std::vector<memsys::ProfilerKind> profilers{
        memsys::ProfilerKind::TreeMattson};
    std::vector<SamplingPoint> sampling{SamplingPoint{}};
    /** Canonical coherence-protocol names (short forms normalized at
     *  parse time). */
    std::vector<std::string> protocols{"write-invalidate"};
    /** Canonical node-hierarchy labels ("single" | "incl:<l1>:<l2>" |
     *  "excl:<l1>:<l2>"). */
    std::vector<std::string> hierarchies{"single"};
    /** Canonical replay-scheduler labels ("static" | "round-robin" |
     *  "steal:r<rate>:s<seed>"; aliases normalized at parse time). */
    std::vector<std::string> schedulers{"static"};
    /** Keep only entries whose name contains one of these (empty =
     *  keep all); then drop entries whose name contains any exclude. */
    std::vector<std::string> include;
    std::vector<std::string> exclude;
    bool analyzeRaces = false;
    /** Per-study watchdog forwarded to the daemon (0 = off). */
    double timeoutSeconds = 0.0;
};

/** Parse a wsg-campaign-grid-v1 document.
 *  @throws CampaignError on malformed input or unknown keys. */
GridSpec parseGridSpec(std::string_view json);

/** parseGridSpec over a file. @throws CampaignError (also on IO). */
GridSpec loadGridSpec(const std::string &path);

/** One expanded grid point: a submittable request plus its axes. */
struct CampaignEntry
{
    /**
     * Stable axis-qualified label: the variant-suffixed preset name
     * plus "@ppo=", "@prof=", "@samp=", "@proto=", "@hier=", "@sched="
     * segments for non-default axis values. Filters match against
     * this.
     */
    std::string name;
    /** Ready-to-send wire request (preset, overrides, timeout). */
    serve::Request request;
    /** FNV-1a hex of the canonical config — the daemon's cache key. */
    std::string configHash;

    // The entry's axis coordinates, for aggregation.
    std::string preset;
    core::ProblemSize size = core::ProblemSize::Base;
    /** As requested; 0 = preset default. */
    std::uint32_t lineBytes = 0;
    /** As requested; 0 = study default. */
    int pointsPerOctave = 0;
    memsys::ProfilerKind profiler = memsys::ProfilerKind::TreeMattson;
    std::string samplingLabel = "exact";
    std::string protocol = "write-invalidate";
    std::string hierarchy = "single";
    std::string scheduler = "static";
};

/** An expanded, filtered, content-addressed study population. */
struct Grid
{
    std::vector<CampaignEntry> entries;
    /**
     * FNV-1a hex over every entry's (name, config hash) pair — the
     * manifest compatibility key: a resumed campaign must present the
     * same grid hash or the checkpoint is rejected.
     */
    std::string gridHash;
    /** Cross-product points dropped as infeasible (AET × sampling). */
    std::size_t skippedInfeasible = 0;
    /** Cross-product points dropped by include/exclude filters. */
    std::size_t filteredOut = 0;
};

/**
 * Expand @p spec into its deterministic study population (nested-loop
 * order: preset, size, line, resolution, profiler, sampling, protocol,
 * hierarchy, scheduler).
 * @throws CampaignError on unknown presets or axis values the suite
 *         factory rejects.
 */
Grid expandGrid(const GridSpec &spec);

} // namespace wsg::campaign

#endif // WSG_CAMPAIGN_GRID_HH
