/**
 * @file
 * wsg-campaign — sweep orchestrator over the wsg-served study daemon.
 *
 * Expand a declarative grid file into its study population, drive it
 * through the daemon with bounded concurrency and typed-overload
 * retry, checkpoint completions to a manifest, and emit the
 * wsg-campaign-report-v1 aggregate.
 *
 * Usage:
 *   wsg-campaign --socket PATH --grid FILE [--report FILE]
 *                [--manifest FILE] [--results DIR] [--concurrency N]
 *                [--retries N] [--backoff-ms MS] [--telemetry]
 *                [--min-hit-ratio F] [--quiet]
 *   wsg-campaign --grid FILE --list
 *
 * --list expands and prints the population (name and config hash per
 * line) without contacting a daemon — a dry run for grid authoring.
 * --manifest makes the run resumable: re-running the same command
 * skips entries whose ok results are already on disk (when --results
 * is given) and re-fetches the rest from the daemon's cache.
 * --telemetry folds volatile fleet telemetry (cache dispositions,
 * retry counts, latency quantiles) into the report; leave it off when
 * reports must be byte-identical across resumed runs.
 * --min-hit-ratio F fails the run (exit 1) when fewer than F of the
 * completed studies were served from a cache layer — how CI asserts
 * that a resumed campaign really resumed.
 *
 * Exit codes: 0 all studies ok; 1 any study failed or --min-hit-ratio
 * unmet; 2 usage or grid errors.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/driver.hh"
#include "campaign/grid.hh"
#include "campaign/report.hh"

using namespace wsg;

namespace
{

[[noreturn]] void
usage(const std::string &error)
{
    std::cerr
        << "error: " << error
        << "\nusage: wsg-campaign --socket PATH --grid FILE"
           " [--report FILE]\n"
           "                    [--manifest FILE] [--results DIR]"
           " [--concurrency N]\n"
           "                    [--retries N] [--backoff-ms MS]"
           " [--telemetry]\n"
           "                    [--min-hit-ratio F] [--quiet]\n"
           "       wsg-campaign --grid FILE --list\n";
    std::exit(2);
}

struct Cli
{
    std::string socket;
    std::string grid;
    std::string report;
    campaign::DriverConfig driver;
    bool list = false;
    bool telemetry = false;
    bool quiet = false;
    double minHitRatio = -1.0;
};

unsigned
parseUnsigned(const std::string &flag, const std::string &value)
{
    std::size_t pos = 0;
    unsigned long v = 0;
    try {
        v = std::stoul(value, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != value.size())
        usage(flag + " needs a non-negative integer");
    return static_cast<unsigned>(v);
}

Cli
parseCli(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--socket") {
            cli.socket = next("--socket");
        } else if (arg == "--grid") {
            cli.grid = next("--grid");
        } else if (arg == "--report") {
            cli.report = next("--report");
        } else if (arg == "--manifest") {
            cli.driver.manifestPath = next("--manifest");
        } else if (arg == "--results") {
            cli.driver.resultsDir = next("--results");
        } else if (arg == "--concurrency") {
            cli.driver.concurrency =
                parseUnsigned(arg, next("--concurrency"));
            if (cli.driver.concurrency == 0)
                usage("--concurrency must be at least 1");
        } else if (arg == "--retries") {
            cli.driver.retry.retries =
                parseUnsigned(arg, next("--retries"));
        } else if (arg == "--backoff-ms") {
            unsigned ms = parseUnsigned(arg, next("--backoff-ms"));
            if (ms == 0)
                usage("--backoff-ms must be positive");
            cli.driver.retry.baseBackoffMs = ms;
        } else if (arg == "--telemetry") {
            cli.telemetry = true;
        } else if (arg == "--list") {
            cli.list = true;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "--min-hit-ratio") {
            std::string v = next("--min-hit-ratio");
            std::size_t pos = 0;
            double f = -1.0;
            try {
                f = std::stod(v, &pos);
            } catch (const std::exception &) {
                pos = 0;
            }
            if (pos != v.size() || f < 0.0 || f > 1.0)
                usage("--min-hit-ratio needs a fraction in [0, 1]");
            cli.minHitRatio = f;
        } else {
            usage("unknown argument '" + arg + "'");
        }
    }
    if (cli.grid.empty())
        usage("--grid is required");
    if (!cli.list && cli.socket.empty())
        usage("--socket is required (or pass --list)");
    return cli;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli = parseCli(argc, argv);

    campaign::Grid grid;
    try {
        grid = campaign::expandGrid(campaign::loadGridSpec(cli.grid));
    } catch (const campaign::CampaignError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    if (grid.entries.empty()) {
        std::cerr << "error: grid expands to zero studies ("
                  << grid.filteredOut << " filtered out, "
                  << grid.skippedInfeasible << " infeasible)\n";
        return 2;
    }

    if (cli.list) {
        for (const campaign::CampaignEntry &entry : grid.entries)
            std::cout << entry.configHash << " " << entry.name << "\n";
        std::cerr << grid.entries.size() << " studies (grid "
                  << grid.gridHash << ", " << grid.filteredOut
                  << " filtered out, " << grid.skippedInfeasible
                  << " infeasible)\n";
        return 0;
    }

    cli.driver.socketPath = cli.socket;
    if (!cli.quiet) {
        cli.driver.progress = [](const std::string &name,
                                 const std::string &status,
                                 std::size_t done,
                                 std::size_t total) {
            std::cerr << "[" << done << "/" << total << "] " << status
                      << " " << name << "\n";
        };
        std::cerr << "campaign: " << grid.entries.size()
                  << " studies (grid " << grid.gridHash << ", "
                  << grid.filteredOut << " filtered out, "
                  << grid.skippedInfeasible << " infeasible)\n";
    }

    campaign::CampaignResult result;
    try {
        result = campaign::runCampaign(grid, cli.driver);
    } catch (const campaign::CampaignError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    campaign::CampaignReport report;
    std::string rendered;
    try {
        report = campaign::buildCampaignReport(grid, result,
                                               cli.telemetry);
        rendered = campaign::writeCampaignReport(report);
    } catch (const campaign::CampaignError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    if (cli.report.empty()) {
        std::cout << rendered;
    } else {
        std::ofstream out(cli.report,
                          std::ios::binary | std::ios::trunc);
        out.write(rendered.data(),
                  static_cast<std::streamsize>(rendered.size()));
        out.flush();
        if (!out) {
            std::cerr << "error: cannot write " << cli.report << "\n";
            return 1;
        }
    }

    const campaign::CampaignTelemetry &tel = result.telemetry;
    if (!cli.quiet) {
        std::cerr << "campaign: " << report.ok << "/" << report.entries
                  << " ok (" << tel.skipped << " resumed, "
                  << tel.cacheHits << " hits, " << tel.cacheMisses
                  << " computed, " << tel.cacheJoins << " joins, "
                  << tel.retriedRoundTrips << " retried)"
                  << " p50=" << tel.p50Seconds
                  << "s p95=" << tel.p95Seconds << "s\n";
    }

    int exit_code = report.ok == report.entries ? 0 : 1;
    if (cli.minHitRatio >= 0.0 &&
        tel.cacheServedRatio() < cli.minHitRatio) {
        std::cerr << "error: cache-served ratio "
                  << tel.cacheServedRatio() << " below required "
                  << cli.minHitRatio << "\n";
        exit_code = 1;
    }
    return exit_code;
}
