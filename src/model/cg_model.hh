/**
 * @file
 * Analytical model of iterative solvers / conjugate gradient (Section 4).
 *
 * The solver sweeps a 5-point (2-D) or 7-point (3-D) stencil grid once per
 * iteration; data per grid point is calibrated to the paper's prototypical
 * problems (1 GB at 4000^2 in 2-D, 225^3 in 3-D):
 *
 *   2-D: 8 doubles/point (5 stencil weights + solution/search/residual)
 *   3-D: 11 doubles/point (7 stencil weights + vectors)
 *
 * Working sets:
 *   lev1WS  a sliding window of x-vector subrows (2-D) or planes (3-D):
 *           2-D  kWindowRows2d * (n / sqrt(P)) * 8      (~5 KB prototyp.)
 *           3-D  kWindowPlanes3d * (n / cbrt(P))^2 * 8  (~18 KB prototyp.)
 *   lev2WS  the processor's whole partition
 *
 * Miss metric: double-word read misses per FLOP (10 FLOPs per point per
 * iteration, as in the paper's "10 n^2 operations").
 */

#ifndef WSG_MODEL_CG_MODEL_HH
#define WSG_MODEL_CG_MODEL_HH

#include <cstdint>
#include <vector>

#include "model/app_model.hh"

namespace wsg::model
{

/** Problem instance for the CG model. */
struct CgParams
{
    /** Grid side length (n x n or n x n x n points). */
    std::uint64_t n = 4000;
    /** Processor count (arranged as a sqrt(P) or cbrt(P) grid). */
    std::uint64_t P = 1024;
    /** 2 or 3 dimensional grid. */
    int dims = 2;
};

/** Closed-form characterization of grid CG. */
class CgModel
{
  public:
    explicit CgModel(const CgParams &params) : p_(params) {}

    const CgParams &params() const { return p_; }

    std::vector<WsLevel> workingSets() const;
    double initialMissRate() const;
    stats::Curve missCurve(const std::vector<std::uint64_t> &sizes) const;

    /** FLOPs per CG iteration: 10 points-worth per grid point. */
    double flopsPerIteration() const;

    /** Bytes of data per grid point (weights + vectors). */
    double bytesPerPoint() const;

    double dataBytes() const;
    double grainBytes() const { return dataBytes() / double(p_.P); }

    /** Points on the partition surface communicated per iteration,
     *  per processor. */
    double commWordsPerIterPerProc() const;

    /** FLOPs per communicated double word:
     *  2-D: 5 n / (2 sqrt(P));   3-D: 7 n / (3 cbrt(P)). */
    double commToCompRatio() const;

    /** Misses/FLOP floor from inherent communication. */
    double commMissRate() const { return 1.0 / commToCompRatio(); }

    /** Side length of one processor's subgrid. */
    double pointsPerSide() const;

    static GrowthRates growthRates();

  private:
    CgParams p_;
};

} // namespace wsg::model

#endif // WSG_MODEL_CG_MODEL_HH
