#include "model/lu_model.hh"

#include <cmath>

namespace wsg::model
{

namespace
{
constexpr double kWord = 8.0; // bytes per double word
} // namespace

std::vector<WsLevel>
LuModel::workingSets() const
{
    double B = p_.B;
    double n = static_cast<double>(p_.n);
    double sqrtP = std::sqrt(static_cast<double>(p_.P));

    std::vector<WsLevel> levels;
    levels.push_back({"lev1WS", 2.0 * B * kWord, 0.5,
                      "two columns of a block (one column reused)"});
    levels.push_back({"lev2WS", B * B * kWord, 1.0 / B,
                      "one whole BxB block"});
    levels.push_back({"lev3WS", 2.0 * n * B / sqrtP * kWord,
                      1.0 / (2.0 * B),
                      "row/column-K blocks used by one processor"});
    levels.push_back({"lev4WS", n * n / static_cast<double>(p_.P) * kWord,
                      commMissRate(),
                      "all blocks owned by a processor"});
    return levels;
}

double
LuModel::initialMissRate() const
{
    // Inner kernel: a_ij += a_ik * a_kj -> 2 FLOPs, 2 streamed operand
    // reads when nothing is retained.
    return 1.0;
}

stats::Curve
LuModel::missCurve(const std::vector<std::uint64_t> &sizes) const
{
    return stepCurveFromLevels(
        "LU B=" + std::to_string(p_.B), initialMissRate(), workingSets(),
        sizes);
}

double
LuModel::totalFlops() const
{
    double n = static_cast<double>(p_.n);
    return 2.0 * n * n * n / 3.0;
}

double
LuModel::dataBytes() const
{
    double n = static_cast<double>(p_.n);
    return n * n * kWord;
}

double
LuModel::commWords() const
{
    double n = static_cast<double>(p_.n);
    return n * n * std::sqrt(static_cast<double>(p_.P));
}

double
LuModel::commToCompRatio() const
{
    return totalFlops() / commWords();
}

double
LuModel::blocksPerProcessor() const
{
    double n = static_cast<double>(p_.n);
    double blocks = (n / p_.B) * (n / p_.B);
    return blocks / static_cast<double>(p_.P);
}

GrowthRates
LuModel::growthRates()
{
    return {"LU", "n^2", "n^3", "n^2", "n^2 sqrt(P)", "const"};
}

} // namespace wsg::model
