#include "model/barnes_model.hh"

#include <cmath>

namespace wsg::model
{

namespace
{

/**
 * lev2WS = kLev2Coeff * (1/theta^2) * log10(n) bytes. The paper gives the
 * proportionality constant as "about 6 Kbytes"; 6800 bytes reproduces its
 * data points (32 KB at 64K particles, 20 KB at 1024, 40 KB at 1M).
 */
constexpr double kLev2Coeff = 6800.0;

/** Interaction scratch state; "only about 0.7 Kbytes in size". */
constexpr double kLev1Bytes = 700.0;

/** Read miss rate once lev1WS (but not lev2WS) fits: "about 20%". */
constexpr double kAfterLev1Rate = 0.20;

/**
 * Communication-volume constant for
 *   comm units/processor/step = kCommCoeff * n^(1/3) theta^3 / p^(1/3)
 *                               * log2(p)^(4/3),
 * calibrated so the prototypical 4.5M-particle, 1024-processor problem
 * costs ~1 double word per 10,000 instructions and the 16K-processor
 * variant ~1 per 1,000, as quoted in Section 6.3.
 */
constexpr double kCommCoeff = 0.74;

/** Instructions per particle-particle/particle-cell interaction. */
constexpr double kInstrPerInteraction = 80.0;

/** Shared-data double-word reads per instruction, used to convert a
 *  words-per-instruction communication rate into a read-miss-rate floor.
 *  Order-of-magnitude only; the figure-6 floor comes from simulation. */
constexpr double kReadsPerInstruction = 0.3;

} // namespace

double
BarnesModel::interactionsPerParticle() const
{
    return (1.0 / (p_.theta * p_.theta)) * std::log2(p_.n);
}

double
BarnesModel::lev2Bytes() const
{
    return kLev2Coeff * (1.0 / (p_.theta * p_.theta)) * std::log10(p_.n);
}

std::vector<WsLevel>
BarnesModel::workingSets() const
{
    std::vector<WsLevel> levels;
    levels.push_back({"lev1WS", kLev1Bytes, kAfterLev1Rate,
                      "interaction scratch state"});
    levels.push_back({"lev2WS", lev2Bytes(), commMissRate(),
                      "tree data for one particle's force"});
    // lev3WS: the larger of the partition and the data its forces touch.
    double partition = dataBytes() / p_.P;
    double touched = lev2Bytes() * std::cbrt(particlesPerProc());
    levels.push_back({"lev3WS", std::max(partition, touched),
                      commMissRate() * 0.5,
                      "partition + all data its forces touch"});
    return levels;
}

stats::Curve
BarnesModel::missCurve(const std::vector<std::uint64_t> &sizes) const
{
    return stepCurveFromLevels("Barnes-Hut", initialMissRate(),
                               workingSets(), sizes);
}

double
BarnesModel::instructionsPerTimestep() const
{
    return kInstrPerInteraction * p_.n * interactionsPerParticle();
}

double
BarnesModel::commUnitsPerProcPerStep() const
{
    double log_p = std::log2(std::max(2.0, p_.P));
    return kCommCoeff * std::cbrt(p_.n) * std::pow(p_.theta, 3.0) /
           std::cbrt(p_.P) * std::pow(log_p, 4.0 / 3.0);
}

double
BarnesModel::wordsPerInstruction() const
{
    double instr_per_proc = instructionsPerTimestep() / p_.P;
    // One communication unit is 3 double words.
    return 3.0 * commUnitsPerProcPerStep() / instr_per_proc;
}

double
BarnesModel::commMissRate() const
{
    return wordsPerInstruction() / kReadsPerInstruction;
}

GrowthRates
BarnesModel::growthRates()
{
    return {"Barnes-Hut", "n", "(1/theta^2) n log n", "n",
            "n^(1/3) theta^3 P^(2/3) log^(4/3) P", "(1/theta^2) log n"};
}

} // namespace wsg::model
