/**
 * @file
 * Machine design-space explorer for the paper's closing question
 * (Section 8): given a fixed hardware budget split between processors
 * and memory, what split minimizes execution time for a given
 * application — and is the 50/50 split "within a small constant factor
 * of the optimal design for any given application", as the paper
 * conjectures?
 *
 * Model: a budget of `budgetDollars` buys P = f*B/cp processors and
 * M = (1-f)*B/cm bytes of memory. A design is feasible when M holds the
 * problem. Execution time is
 *
 *     time ~ ops / (P * flopRate * utilization(ratio(P)))
 *
 * where ratio(P) is the application's computation-to-communication
 * ratio at P processors (grain shrinks as P grows) and utilization()
 * is the latency model's comp/(comp+comm) estimate. This captures the
 * paper's trade-off: more processors means more parallelism but finer
 * grain and relatively more communication — and less memory.
 */

#ifndef WSG_MODEL_DESIGN_SPACE_HH
#define WSG_MODEL_DESIGN_SPACE_HH

#include <functional>
#include <string>

#include "model/perf_model.hh"
#include "stats/curve.hh"

namespace wsg::model
{

/** Hardware cost parameters. */
struct CostModel
{
    /** Total machine budget. */
    double budgetDollars = 1.0e6;
    /** Cost of one processor (with its infrastructure). */
    double dollarsPerProcessor = 1000.0;
    /** Cost of one megabyte of memory. */
    double dollarsPerMByte = 50.0;
    /** Peak FLOP rate per processor (FLOPs per second). */
    double flopsPerProcessorPerSec = 2.0e8;

    /** Parameters representative of the paper's era ("it makes little
     *  sense to place $50 worth of memory on a $1000 node"). */
    static CostModel ca1993();
};

/** One evaluated design point. */
struct DesignPoint
{
    /** Fraction of the budget spent on processors. */
    double processorFraction = 0.0;
    double processors = 0.0;
    double memoryBytes = 0.0;
    /** Memory per processor (the grain the paper asks about). */
    double grainBytes = 0.0;
    /** Estimated execution time, seconds; infinity when infeasible. */
    double timeSeconds = 0.0;
    bool feasible = false;
};

/** An application's inputs to the explorer. */
struct DesignProblem
{
    std::string name;
    /** Total data set bytes (must fit in memory). */
    double dataBytes = 0.0;
    /** Total FLOPs of the computation. */
    double totalFlops = 0.0;
    /** Computation-to-communication ratio as a function of P. */
    std::function<double(double P)> ratioAtP;
};

/** Evaluate one processor-budget fraction. */
DesignPoint evaluateDesign(const DesignProblem &problem,
                           const CostModel &cost, const LatencyModel &lat,
                           double processor_fraction);

/**
 * Sweep processor fractions and return (fraction, time) for feasible
 * points.
 *
 * @param steps Number of fractions sampled in (0, 1).
 */
stats::Curve designCurve(const DesignProblem &problem,
                         const CostModel &cost, const LatencyModel &lat,
                         int steps = 99);

/** The time-minimizing feasible design over the same sweep. */
DesignPoint optimalDesign(const DesignProblem &problem,
                          const CostModel &cost, const LatencyModel &lat,
                          int steps = 99);

} // namespace wsg::model

#endif // WSG_MODEL_DESIGN_SPACE_HH
