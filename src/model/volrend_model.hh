/**
 * @file
 * Analytical model of optimized ray-cast volume rendering (Section 7).
 *
 * Working sets:
 *   lev1WS  voxel + octree data reused along one ray:     ~0.4 KB
 *   lev2WS  data shared between successive rays:          4000 + 110 n
 *           bytes (n = voxels per side; the paper's formula)
 *   lev3WS  voxels a processor references in one frame,
 *           reusable across frames under gradual rotation
 *
 * Miss metric: read miss rate. Plateaus from the paper: ~15% after
 * lev1WS, ~2% after lev2WS, ~0.1% (communication) after lev3WS.
 *
 * Communication: voxel data is read-only and distributed round-robin, so
 * each frame's first touch of a voxel is a remote read; the ratio is
 * ~600 instructions per communicated word, independent of n and p.
 */

#ifndef WSG_MODEL_VOLREND_MODEL_HH
#define WSG_MODEL_VOLREND_MODEL_HH

#include <cstdint>
#include <vector>

#include "model/app_model.hh"

namespace wsg::model
{

/** Problem instance for the volume-rendering model. */
struct VolrendParams
{
    /** Voxels along one dimension (cube assumed for the model). */
    double n = 256.0;
    /** Processor count. */
    double P = 4.0;
};

/** Closed-form characterization of the volume renderer. */
class VolrendModel
{
  public:
    explicit VolrendModel(const VolrendParams &params) : p_(params) {}

    const VolrendParams &params() const { return p_; }

    std::vector<WsLevel> workingSets() const;
    double initialMissRate() const { return 1.0; }
    stats::Curve missCurve(const std::vector<std::uint64_t> &sizes) const;

    /** lev2WS bytes: 4000 + 110 n. */
    double lev2Bytes() const { return 4000.0 + 110.0 * p_.n; }

    /** Data set size: ~4 bytes per voxel (paper: "roughly 4 n^3"). */
    double dataBytes() const { return 4.0 * p_.n * p_.n * p_.n; }
    double grainBytes() const { return dataBytes() / p_.P; }

    /** Instructions per frame: > 300 n^3. */
    double instructionsPerFrame() const
    {
        return 300.0 * p_.n * p_.n * p_.n;
    }

    /** Communicated words per frame: ~2 n^3 bytes of voxel data. The
     *  paper's "600 instructions per word" implies 4-byte words here
     *  (voxels are small integers, not doubles). */
    double commWordsPerFrame() const
    {
        return 2.0 * p_.n * p_.n * p_.n / 4.0;
    }

    /** ~600 instructions per communicated word, independent of n, p. */
    double instructionsPerCommWord() const
    {
        return instructionsPerFrame() / commWordsPerFrame();
    }

    /** Rays (pixels) per processor — the load-balance work unit. */
    double raysPerProc() const { return p_.n * p_.n / p_.P; }

    /** Read-miss-rate floor from inherent communication: ~0.1%. */
    double commMissRate() const { return 0.001; }

    static GrowthRates growthRates();

  private:
    VolrendParams p_;
};

} // namespace wsg::model

#endif // WSG_MODEL_VOLREND_MODEL_HH
