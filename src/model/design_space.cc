#include "model/design_space.hh"

#include <cmath>
#include <limits>

namespace wsg::model
{

CostModel
CostModel::ca1993()
{
    CostModel c;
    c.budgetDollars = 1.0e6;
    c.dollarsPerProcessor = 1000.0;
    c.dollarsPerMByte = 50.0;
    c.flopsPerProcessorPerSec = 2.0e8;
    return c;
}

DesignPoint
evaluateDesign(const DesignProblem &problem, const CostModel &cost,
               const LatencyModel &lat, double processor_fraction)
{
    DesignPoint pt;
    pt.processorFraction = processor_fraction;
    pt.timeSeconds = std::numeric_limits<double>::infinity();
    if (processor_fraction <= 0.0 || processor_fraction >= 1.0)
        return pt;

    pt.processors = std::max(
        1.0, std::floor(processor_fraction * cost.budgetDollars /
                        cost.dollarsPerProcessor));
    pt.memoryBytes = (1.0 - processor_fraction) * cost.budgetDollars /
                     cost.dollarsPerMByte * 1.0e6;
    pt.grainBytes = pt.memoryBytes / pt.processors;

    if (pt.memoryBytes < problem.dataBytes)
        return pt; // problem does not fit: infeasible

    double ratio = problem.ratioAtP(pt.processors);
    double util = utilization(ratio, lat);
    if (util <= 0.0)
        return pt;

    pt.feasible = true;
    pt.timeSeconds = problem.totalFlops /
                     (pt.processors * cost.flopsPerProcessorPerSec *
                      util);
    return pt;
}

stats::Curve
designCurve(const DesignProblem &problem, const CostModel &cost,
            const LatencyModel &lat, int steps)
{
    stats::Curve curve(problem.name);
    for (int i = 1; i <= steps; ++i) {
        double f = static_cast<double>(i) / (steps + 1);
        DesignPoint pt = evaluateDesign(problem, cost, lat, f);
        if (pt.feasible)
            curve.addPoint(f, pt.timeSeconds);
    }
    return curve;
}

DesignPoint
optimalDesign(const DesignProblem &problem, const CostModel &cost,
              const LatencyModel &lat, int steps)
{
    DesignPoint best;
    best.timeSeconds = std::numeric_limits<double>::infinity();
    for (int i = 1; i <= steps; ++i) {
        double f = static_cast<double>(i) / (steps + 1);
        DesignPoint pt = evaluateDesign(problem, cost, lat, f);
        if (pt.feasible && pt.timeSeconds < best.timeSeconds)
            best = pt;
    }
    return best;
}

} // namespace wsg::model
