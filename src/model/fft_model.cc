#include "model/fft_model.hh"

#include <cmath>
#include <limits>
#include <string>

namespace wsg::model
{

namespace
{
constexpr double kWord = 8.0;
constexpr double kComplex = 16.0;
} // namespace

double
FftModel::pointsPerProc() const
{
    return static_cast<double>(p_.N) / static_cast<double>(p_.P);
}

std::vector<WsLevel>
FftModel::workingSets() const
{
    double r = p_.radix;
    double log2r = std::log2(r);

    // Steady-state reads per r-point group once the group data fits:
    // 2r words of points + 2(r-1) words of twiddles.
    double after1 = (4.0 * r - 2.0) / (5.0 * r * log2r);

    std::vector<WsLevel> levels;
    levels.push_back({"lev1WS", (2.0 * r + 2.0 * (r - 1.0)) * kWord,
                      after1, "one internal-radix group + twiddles"});
    levels.push_back({"lev2WS", pointsPerProc() * kComplex, commMissRate(),
                      "entire per-processor point set"});
    return levels;
}

double
FftModel::initialMissRate() const
{
    // With no reuse at all, every internal stage of a radix-r group
    // re-reads its points from memory: log2 r times the post-lev1 rate.
    double r = p_.radix;
    return (4.0 * r - 2.0) / (5.0 * r);
}

stats::Curve
FftModel::missCurve(const std::vector<std::uint64_t> &sizes) const
{
    return stepCurveFromLevels("FFT radix-" + std::to_string(p_.radix),
                               initialMissRate(), workingSets(), sizes);
}

double
FftModel::totalFlops() const
{
    double N = static_cast<double>(p_.N);
    return 5.0 * N * std::log2(N);
}

double
FftModel::dataBytes() const
{
    return static_cast<double>(p_.N) * kComplex;
}

double
FftModel::modelCommToCompRatio() const
{
    return 2.5 * std::log2(pointsPerProc());
}

int
FftModel::numExchangeStages() const
{
    double logN = std::log2(static_cast<double>(p_.N));
    double logD = std::log2(pointsPerProc());
    int stages = static_cast<int>(std::ceil(logN / logD));
    // A single-stage (P == 1) computation is all-local. With two or more
    // radix-D stages the data crosses the machine once per stage: the
    // inter-stage transposes plus the final reordering — the paper's "the
    // 2N words of data [are communicated] twice" for the 26-stage,
    // D = 2^16 prototypical problem.
    return stages >= 2 ? stages : 0;
}

double
FftModel::exactCommToCompRatio() const
{
    int exchanges = numExchangeStages();
    if (exchanges == 0)
        return std::numeric_limits<double>::infinity();
    double N = static_cast<double>(p_.N);
    // 2N double words of complex data cross the machine per exchange.
    double words = 2.0 * N * exchanges;
    return totalFlops() / words;
}

double
FftModel::pointsPerProcForRatio(double ratio)
{
    return std::exp2(0.4 * ratio);
}

GrowthRates
FftModel::growthRates()
{
    return {"FFT", "n", "n log n", "n", "n log P", "const"};
}

} // namespace wsg::model
