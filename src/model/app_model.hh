/**
 * @file
 * Common vocabulary for the per-application analytical models.
 *
 * Each application section of the paper derives (a) a working-set
 * hierarchy with sizes and post-knee miss rates, (b) a computation-to-
 * communication ratio, and (c) growth rates for Table 1. The per-app
 * model classes in this directory expose those through the structures
 * defined here, so the table/figure benches can iterate over applications
 * uniformly.
 */

#ifndef WSG_MODEL_APP_MODEL_HH
#define WSG_MODEL_APP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/curve.hh"

namespace wsg::model
{

/** One level of an analytically derived working-set hierarchy. */
struct WsLevel
{
    /** "lev1WS", "lev2WS", ... */
    std::string name;
    /** Size in bytes. */
    double sizeBytes = 0.0;
    /** Miss metric once this level fits (misses/FLOP or read miss rate,
     *  per the application's metric). */
    double missRateAfter = 0.0;
    /** Short description ("two columns of a block"). */
    std::string what;
};

/** Growth-rate row of Table 1 (symbolic, as printed in the paper). */
struct GrowthRates
{
    std::string app;
    std::string data;
    std::string ops;
    std::string concurrency;
    std::string communication;
    std::string importantWorkingSet;
};

/**
 * Build a stepwise miss-rate curve from a working-set hierarchy: the rate
 * is @p initial_rate below the first level and drops to each level's
 * missRateAfter at its size. Sampled at the given sizes (step semantics).
 */
stats::Curve stepCurveFromLevels(const std::string &name,
                                 double initial_rate,
                                 const std::vector<WsLevel> &levels,
                                 const std::vector<std::uint64_t> &sizes);

/**
 * Evaluate a stepwise hierarchy at one cache size (bytes): the miss rate
 * with the largest fitting level accounted for.
 */
double rateAtSize(double initial_rate, const std::vector<WsLevel> &levels,
                  double cache_bytes);

} // namespace wsg::model

#endif // WSG_MODEL_APP_MODEL_HH
