#include "model/machine_model.hh"

#include <cmath>
#include <limits>

namespace wsg::model
{

Sustainability
classifySustainability(double flops_per_word)
{
    if (flops_per_word < kExtremelyDifficultBelow)
        return Sustainability::ExtremelyDifficult;
    if (flops_per_word <= kEasyAbove)
        return Sustainability::Sustainable;
    return Sustainability::Easy;
}

std::string
sustainabilityName(Sustainability s)
{
    switch (s) {
      case Sustainability::ExtremelyDifficult:
        return "extremely difficult";
      case Sustainability::Sustainable:
        return "sustainable (not easy)";
      case Sustainability::Easy:
        return "easy";
    }
    return "?";
}

double
MachineModel::sustainableRatio(CommPattern pattern) const
{
    double mbps = pattern == CommPattern::NearestNeighbor ? linkMBps
                                                          : generalMBps;
    if (mbps <= 0.0)
        return std::numeric_limits<double>::infinity();
    // MFLOPS / (Mwords/s); a double word is 8 bytes.
    return mflopsPerNode / (mbps / 8.0);
}

MachineModel
MachineModel::paragon()
{
    MachineModel m;
    m.name = "Intel Paragon";
    m.mflopsPerNode = 200.0; // four 50-MFLOPS processors
    m.linkMBps = 200.0;
    m.numNodes = 1024; // 32x32 mesh in the paper's example
    // 64 links across the bisector; half of all random messages cross it,
    // so each of the 1024 nodes sustains 64/512 of a link.
    m.generalMBps = 200.0 * 64.0 / 512.0;
    return m;
}

MachineModel
MachineModel::cm5()
{
    MachineModel m;
    m.name = "TMC CM-5";
    m.mflopsPerNode = 128.0;
    m.linkMBps = 20.0;
    m.generalMBps = 5.0;
    m.numNodes = 1024;
    return m;
}

} // namespace wsg::model
