#include "model/perf_model.hh"

#include <algorithm>
#include <cmath>

namespace wsg::model
{

LatencyModel
LatencyModel::ca1993()
{
    LatencyModel lat;
    lat.cyclesPerFlop = 0.5;    // e.g. 100 MHz node at 200 MFLOPS peak
    lat.localMissCycles = 30.0;
    lat.remoteMissCycles = 120.0;
    lat.hidingFactor = 0.0;
    return lat;
}

double
cyclesPerFlop(const LatencyModel &lat, double misses_per_flop,
              double comm_misses_per_flop)
{
    double local = std::max(0.0, misses_per_flop - comm_misses_per_flop);
    double exposed = 1.0 - lat.hidingFactor;
    return lat.cyclesPerFlop +
           exposed * (local * lat.localMissCycles +
                      comm_misses_per_flop * lat.remoteMissCycles);
}

stats::Curve
performanceCurve(const stats::Curve &miss_curve, double comm_floor,
                 const LatencyModel &lat, const std::string &name)
{
    stats::Curve out(name);
    for (const auto &p : miss_curve.points()) {
        double comm = std::min(p.y, comm_floor);
        double cycles = cyclesPerFlop(lat, p.y, comm);
        out.addPoint(p.x, lat.cyclesPerFlop / cycles);
    }
    return out;
}

double
utilization(double flops_per_word, const LatencyModel &lat)
{
    if (flops_per_word <= 0.0)
        return 0.0;
    double comp = flops_per_word * lat.cyclesPerFlop;
    double comm = (1.0 - lat.hidingFactor) * lat.remoteMissCycles;
    return comp / (comp + comm);
}

double
globalSumCycles(double P, const LatencyModel &lat)
{
    if (P <= 1.0)
        return 0.0;
    // Combine up the tree and broadcast down: 2 log2(P) exchanges.
    return 2.0 * std::ceil(std::log2(P)) * lat.remoteMissCycles;
}

double
globalSumFraction(double flops_per_proc, double P,
                  const LatencyModel &lat, double sums_per_iter)
{
    double sum_cost = sums_per_iter * globalSumCycles(P, lat);
    double comp_cost = flops_per_proc * lat.cyclesPerFlop;
    return sum_cost / (sum_cost + comp_cost);
}

} // namespace wsg::model
