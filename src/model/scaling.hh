/**
 * @file
 * Problem-scaling models (Section 2.2, "Scaling"; reference [9]).
 *
 * Memory-constrained (MC) scaling grows the problem to fill the memory of
 * the larger machine: data set size proportional to P. Time-constrained
 * (TC) scaling grows the problem only until the execution time on the new
 * machine matches the old one: ops(new)/P(new) = ops(old)/P(old).
 *
 * For Barnes-Hut the realistic parameter-scaling rule of Section 6.2 is
 * applied: scaling n by s scales the accuracy parameter theta by s^(-1/8)
 * (down to a floor of ~0.6, below which higher-order moments are used
 * instead) and the time-step by s^(-1/2), so the per-unit-physical-time
 * work grows as s^(7/4) log(sn)/log(n) — TC problem sizes are found by
 * bisection on that expression.
 */

#ifndef WSG_MODEL_SCALING_HH
#define WSG_MODEL_SCALING_HH

#include <cstdint>

#include "model/barnes_model.hh"
#include "model/cg_model.hh"
#include "model/fft_model.hh"
#include "model/lu_model.hh"
#include "model/volrend_model.hh"

namespace wsg::model
{

/** The two scaling disciplines the paper considers. */
enum class ScalingModel : std::uint8_t
{
    MemoryConstrained,
    TimeConstrained,
};

/**
 * Scale an LU problem to @p new_P processors.
 * MC: n ~ sqrt(P) (data n^2 tracks memory).
 * TC: n ~ P^(1/3) (ops n^3 track machine size).
 */
LuParams scaleLu(const LuParams &base, std::uint64_t new_P,
                 ScalingModel model);

/**
 * Scale a CG problem. Per-iteration ops track the data set size, so MC
 * and TC coincide: n ~ P^(1/dims).
 */
CgParams scaleCg(const CgParams &base, std::uint64_t new_P,
                 ScalingModel model);

/**
 * Scale an FFT problem.
 * MC: N ~ P.  TC: N log N ~ P (solved numerically).
 */
FftParams scaleFft(const FftParams &base, std::uint64_t new_P,
                   ScalingModel model);

/** Result of scaling a Barnes-Hut problem. */
struct ScaledBarnes
{
    BarnesParams params;
    /** True when theta hit its floor and higher-order moments (octopole)
     *  would be used instead of reducing theta further. */
    bool momentUpgrade = false;
};

/** Theta floor below which moment order is raised instead (Section 6.2:
 *  "theta = 0.5 or so"; 0.6 reproduces the paper's examples). */
constexpr double kBarnesThetaFloor = 0.6;

/**
 * Scale a Barnes-Hut problem under the realistic co-scaling rule.
 * MC: n ~ P; TC: bisection on s^(7/4) log(s n)/log(n) = P'/P.
 * @param scale_accuracy When false, only n is scaled ("naive" scaling).
 */
ScaledBarnes scaleBarnes(const BarnesParams &base, double new_P,
                         ScalingModel model, bool scale_accuracy = true);

/** Scale a volume-rendering problem; MC and TC coincide: n ~ P^(1/3). */
VolrendParams scaleVolrend(const VolrendParams &base, double new_P,
                           ScalingModel model);

} // namespace wsg::model

#endif // WSG_MODEL_SCALING_HH
