#include "model/scaling.hh"

#include <cmath>
#include <stdexcept>

namespace wsg::model
{

namespace
{

/** Generic bisection for monotone-increasing f on [1, hi]. */
double
solveMonotone(double target, double hi, const auto &f)
{
    double lo = 1.0;
    if (f(hi) < target)
        return hi;
    for (int iter = 0; iter < 200; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (f(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

LuParams
scaleLu(const LuParams &base, std::uint64_t new_P, ScalingModel model)
{
    double k = static_cast<double>(new_P) / static_cast<double>(base.P);
    LuParams out = base;
    out.P = new_P;
    double factor = model == ScalingModel::MemoryConstrained
                        ? std::sqrt(k)
                        : std::cbrt(k);
    out.n = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base.n) * factor));
    return out;
}

CgParams
scaleCg(const CgParams &base, std::uint64_t new_P, ScalingModel model)
{
    (void)model; // ops track data: MC == TC per iteration
    double k = static_cast<double>(new_P) / static_cast<double>(base.P);
    CgParams out = base;
    out.P = new_P;
    double factor = base.dims == 2 ? std::sqrt(k) : std::cbrt(k);
    out.n = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base.n) * factor));
    return out;
}

FftParams
scaleFft(const FftParams &base, std::uint64_t new_P, ScalingModel model)
{
    double k = static_cast<double>(new_P) / static_cast<double>(base.P);
    FftParams out = base;
    out.P = new_P;
    double baseN = static_cast<double>(base.N);
    double s;
    if (model == ScalingModel::MemoryConstrained) {
        s = k;
    } else {
        // Solve s N log2(s N) = k N log2 N for s.
        double target = k * baseN * std::log2(baseN);
        s = solveMonotone(target, k, [&](double x) {
            return x * baseN * std::log2(x * baseN);
        });
    }
    // Round to a power of two, as FFT sizes must be.
    double logN = std::round(std::log2(baseN * s));
    out.N = std::uint64_t{1} << static_cast<unsigned>(logN);
    return out;
}

ScaledBarnes
scaleBarnes(const BarnesParams &base, double new_P, ScalingModel model,
            bool scale_accuracy)
{
    double k = new_P / base.P;
    ScaledBarnes out;
    out.params = base;
    out.params.P = new_P;

    double s;
    if (model == ScalingModel::MemoryConstrained) {
        s = k;
    } else if (!scale_accuracy) {
        // Only n grows; work per unit physical time ~ n log n.
        double target = k * base.n * std::log2(base.n);
        s = solveMonotone(target, k, [&](double x) {
            return x * base.n * std::log2(x * base.n);
        });
    } else {
        // theta ~ s^(-1/8), dt ~ s^(-1/2):
        // work ~ (1/theta^2) n log n / dt ~ s^(1/4) * s * log(sn) * s^(1/2)
        //      = s^(7/4) log(s n).
        double target = k * std::log2(base.n);
        s = solveMonotone(target, k, [&](double x) {
            return std::pow(x, 1.75) * std::log2(x * base.n);
        });
    }

    out.params.n = base.n * s;
    if (scale_accuracy) {
        double theta = base.theta * std::pow(s, -1.0 / 8.0);
        if (theta < kBarnesThetaFloor) {
            theta = kBarnesThetaFloor;
            out.momentUpgrade = true;
        }
        out.params.theta = theta;
        out.params.dt = base.dt * std::pow(s, -0.5);
    }
    return out;
}

VolrendParams
scaleVolrend(const VolrendParams &base, double new_P, ScalingModel model)
{
    (void)model; // execution time tracks the data set: MC == TC
    double k = new_P / base.P;
    VolrendParams out = base;
    out.P = new_P;
    out.n = base.n * std::cbrt(k);
    return out;
}

} // namespace wsg::model
