#include "model/cg_model.hh"

#include <cmath>
#include <string>

namespace wsg::model
{

namespace
{

constexpr double kWord = 8.0;

/**
 * Sliding-window size in subrows / planes of x data. Calibrated against
 * the paper's prototypical numbers: 5 KB at 4000^2/1024 in 2-D and 18 KB
 * at 225^3/1024 in 3-D.
 */
constexpr double kWindowRows2d = 5.0;
constexpr double kWindowPlanes3d = 4.5;

} // namespace

double
CgModel::pointsPerSide() const
{
    double n = static_cast<double>(p_.n);
    double P = static_cast<double>(p_.P);
    return p_.dims == 2 ? n / std::sqrt(P) : n / std::cbrt(P);
}

double
CgModel::bytesPerPoint() const
{
    // 2-D: 5 stencil weights + 3 vector doubles; 3-D: 7 weights + 4.
    return (p_.dims == 2 ? 8.0 : 11.0) * kWord;
}

std::vector<WsLevel>
CgModel::workingSets() const
{
    double side = pointsPerSide();
    double lev1 = p_.dims == 2 ? kWindowRows2d * side * kWord
                               : kWindowPlanes3d * side * side * kWord;
    double points_local = p_.dims == 2 ? side * side : side * side * side;
    double lev2 = points_local * bytesPerPoint();

    std::vector<WsLevel> levels;
    // The stencil weights stream every iteration (5 or 7 reads per point)
    // and the x values from already-swept rows hit once the window fits;
    // the x value from the not-yet-swept side still misses. With 10
    // FLOPs/point the plateau after lev1 is ~(weights + 1 x + vector-op
    // traffic)/10.
    double after1 = p_.dims == 2 ? 0.8 : 1.0;
    levels.push_back({"lev1WS", lev1, after1,
                      p_.dims == 2
                          ? "three adjacent x subrows (plus vector rows)"
                          : "adjacent x cross-section planes"});
    levels.push_back({"lev2WS", lev2, commMissRate(),
                      "entire per-processor partition"});
    return levels;
}

double
CgModel::initialMissRate() const
{
    // Nothing retained: weights + most x neighbours + vector ops all miss.
    return p_.dims == 2 ? 1.0 : 1.2;
}

stats::Curve
CgModel::missCurve(const std::vector<std::uint64_t> &sizes) const
{
    return stepCurveFromLevels("CG " + std::to_string(p_.dims) + "-D",
                               initialMissRate(), workingSets(), sizes);
}

double
CgModel::flopsPerIteration() const
{
    double n = static_cast<double>(p_.n);
    double points = p_.dims == 2 ? n * n : n * n * n;
    // Two FLOPs per stencil nonzero (multiply-add): 10 per point for the
    // 5-point 2-D stencil, 14 for the 7-point 3-D stencil. This yields the
    // paper's ratios 5n/(2 sqrt P) and 7n/(3 cbrt P).
    return (p_.dims == 2 ? 10.0 : 14.0) * points;
}

double
CgModel::dataBytes() const
{
    double n = static_cast<double>(p_.n);
    double points = p_.dims == 2 ? n * n : n * n * n;
    return points * bytesPerPoint();
}

double
CgModel::commWordsPerIterPerProc() const
{
    double side = pointsPerSide();
    return p_.dims == 2 ? 4.0 * side : 6.0 * side * side;
}

double
CgModel::commToCompRatio() const
{
    double flops_per_proc =
        flopsPerIteration() / static_cast<double>(p_.P);
    return flops_per_proc / commWordsPerIterPerProc();
}

GrowthRates
CgModel::growthRates()
{
    return {"CG", "n^2", "n^2", "n^2", "n sqrt(P)", "const"};
}

} // namespace wsg::model
