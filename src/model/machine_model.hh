/**
 * @file
 * Machine models and communication-sustainability bands (Section 2.3).
 *
 * The paper calibrates "what computation-to-communication ratio is
 * sustainable" against the Intel Paragon and the Thinking Machines CM-5,
 * then adopts coarse bands: ratios of 1-15 FLOPs per double word are
 * extremely difficult to sustain, 15-75 sustainable but not easy, and
 * above 75 quite easy. This header reproduces those calculations.
 */

#ifndef WSG_MODEL_MACHINE_MODEL_HH
#define WSG_MODEL_MACHINE_MODEL_HH

#include <cstdint>
#include <string>

namespace wsg::model
{

/** Communication pattern for sustainability estimates. */
enum class CommPattern : std::uint8_t
{
    NearestNeighbor,
    General, // random / bisection-limited
};

/** How hard a computation-to-communication ratio is to sustain. */
enum class Sustainability : std::uint8_t
{
    ExtremelyDifficult, // < 15 FLOPs/word
    Sustainable,        // 15 .. 75
    Easy,               // > 75
};

/** Paper band thresholds (FLOPs per double word). */
constexpr double kExtremelyDifficultBelow = 15.0;
constexpr double kEasyAbove = 75.0;

/** Classify a computation-to-communication ratio into the paper's bands. */
Sustainability classifySustainability(double flops_per_word);

/** Human-readable band name. */
std::string sustainabilityName(Sustainability s);

/**
 * A parallel machine, described the way Section 2.3 does: per-node FLOP
 * rate, per-link bandwidth, and a mesh bisection for general traffic.
 */
struct MachineModel
{
    std::string name;
    /** Per-node peak, MFLOPS. */
    double mflopsPerNode = 0.0;
    /** Node-to-router link bandwidth, Mbyte/s (nearest neighbor limit). */
    double linkMBps = 0.0;
    /** Bandwidth available per node for general traffic, Mbyte/s.
     *  For mesh machines this is derived from the bisection; for machines
     *  like the CM-5 the vendor number is used directly. */
    double generalMBps = 0.0;
    std::uint32_t numNodes = 0;

    /**
     * Minimum computation-to-communication ratio (FLOPs per double word)
     * an application must exhibit for this machine to keep up.
     */
    double sustainableRatio(CommPattern pattern) const;

    /**
     * The paper's Paragon example: 4x50 MFLOPS nodes, 200 MB/s links,
     * 32x32 mesh; general bandwidth derived from the 64-link bisection
     * with half of all random messages crossing it.
     */
    static MachineModel paragon();

    /** The paper's CM-5 example: 128 MFLOPS vector nodes, 20 MB/s
     *  nearest-neighbor and 5 MB/s general bandwidth. */
    static MachineModel cm5();
};

} // namespace wsg::model

#endif // WSG_MODEL_MACHINE_MODEL_HH
