/**
 * @file
 * A simple execution-time model on top of the miss-rate curves.
 *
 * The paper argues from miss rates and computation-to-communication
 * ratios to performance ("a cache that is large enough to hold a given
 * working set can yield dramatic performance benefits"); this module
 * makes that translation explicit: charge every FLOP a compute cost and
 * every miss a (local or remote) memory stall, and convert miss-rate
 * curves into achieved-fraction-of-peak curves and grain-size ratios
 * into node utilizations.
 */

#ifndef WSG_MODEL_PERF_MODEL_HH
#define WSG_MODEL_PERF_MODEL_HH

#include <string>

#include "stats/curve.hh"

namespace wsg::model
{

/** Cost parameters, in processor cycles. */
struct LatencyModel
{
    /** Cycles per floating-point operation at peak. */
    double cyclesPerFlop = 0.5;
    /** Stall cycles for a miss serviced from local memory. */
    double localMissCycles = 30.0;
    /** Stall cycles for a miss serviced from a remote node. */
    double remoteMissCycles = 120.0;
    /**
     * Fraction of miss latency hidden by prefetching/overlap (the paper:
     * LU/CG misses are "predictable enough to be easily prefetched",
     * Barnes-Hut/volrend misses are not).
     */
    double hidingFactor = 0.0;

    /** Parameters representative of ca.-1993 large-scale machines. */
    static LatencyModel ca1993();
};

/**
 * Cycles per FLOP for an execution with @p misses_per_flop total
 * double-word read misses per FLOP, of which @p comm_misses_per_flop
 * are remote (inherent communication).
 */
double cyclesPerFlop(const LatencyModel &lat, double misses_per_flop,
                     double comm_misses_per_flop);

/**
 * Convert a misses-per-FLOP-vs-cache-size curve into an achieved
 * fraction-of-peak curve (1.0 = no memory stalls). The curve's floor is
 * treated as the remote communication rate.
 */
stats::Curve performanceCurve(const stats::Curve &miss_curve,
                              double comm_floor, const LatencyModel &lat,
                              const std::string &name);

/**
 * Node utilization for a computation-to-communication ratio of
 * @p flops_per_word (each communicated double word stalls the node for
 * the unhidden remote latency): comp / (comp + comm).
 */
double utilization(double flops_per_word, const LatencyModel &lat);

/**
 * Cost of one global reduction (the CG dot products' global sum,
 * Section 4.3): a log2(P)-stage combine plus broadcast, each stage one
 * remote exchange. "The rate of increase (O(log P)) is sufficiently
 * slow that ... this cost would not be a significant performance
 * drain for practical P."
 */
double globalSumCycles(double P, const LatencyModel &lat);

/**
 * Fraction of an iteration spent in @p sums_per_iter global sums when
 * each processor computes @p flops_per_proc FLOPs per iteration.
 */
double globalSumFraction(double flops_per_proc, double P,
                         const LatencyModel &lat,
                         double sums_per_iter = 2.0);

} // namespace wsg::model

#endif // WSG_MODEL_PERF_MODEL_HH
