/**
 * @file
 * Node-granularity analysis (the "Grain Size" subsections, 3.3-7.3).
 *
 * For a given application and problem/machine configuration this module
 * computes the quantities the paper uses to judge a grain size:
 * memory per processor, the computation-to-communication ratio and its
 * sustainability band, and the number of load-balance work units per
 * processor — then renders a coarse verdict.
 */

#ifndef WSG_MODEL_GRAIN_HH
#define WSG_MODEL_GRAIN_HH

#include <string>

#include "model/barnes_model.hh"
#include "model/cg_model.hh"
#include "model/fft_model.hh"
#include "model/lu_model.hh"
#include "model/machine_model.hh"
#include "model/volrend_model.hh"

namespace wsg::model
{

/** One grain-size data point for one application configuration. */
struct GrainAssessment
{
    std::string app;
    /** Memory (data) per processor, bytes. */
    double grainBytes = 0.0;
    /** FLOPs (or instructions, for Barnes-Hut/volrend) per communicated
     *  double word. */
    double commToCompRatio = 0.0;
    /** Paper sustainability band for the ratio. */
    Sustainability sustainability = Sustainability::Easy;
    /** Load-balance work units per processor (blocks, points, particles,
     *  rays). */
    double workUnitsPerProc = 0.0;
    std::string workUnitName;
    /** Work units above the load-balance comfort threshold? */
    bool loadBalanceOk = true;
    /** One-line verdict. */
    std::string verdict;
};

/**
 * Load-balance comfort thresholds (work units per processor below which
 * the paper flags trouble): LU "25 blocks ... would reduce processor
 * performance somewhat" vs 380 comfortable; volrend "66 rays, likely to
 * be too few"; Barnes-Hut "280 particles ... load balancing may become a
 * problem".
 */
constexpr double kLuBlocksComfort = 100.0;
constexpr double kBarnesParticlesComfort = 500.0;
constexpr double kVolrendRaysComfort = 100.0;

/** Assess dense LU on the given configuration. */
GrainAssessment assessLu(const LuParams &params);

/** Assess grid CG. */
GrainAssessment assessCg(const CgParams &params);

/** Assess the parallel FFT. */
GrainAssessment assessFft(const FftParams &params);

/** Assess Barnes-Hut (ratio reported in instructions/word). */
GrainAssessment assessBarnes(const BarnesParams &params);

/** Assess the volume renderer (ratio in instructions/word). */
GrainAssessment assessVolrend(const VolrendParams &params);

} // namespace wsg::model

#endif // WSG_MODEL_GRAIN_HH
