#include "model/grain.hh"

#include <cmath>
#include <sstream>

#include "stats/units.hh"

namespace wsg::model
{

namespace
{

std::string
verdictString(const GrainAssessment &a)
{
    std::ostringstream os;
    os << stats::formatBytes(a.grainBytes) << "/processor: communication "
       << sustainabilityName(a.sustainability) << " ("
       << stats::formatRate(a.commToCompRatio) << " per word), "
       << stats::formatCount(a.workUnitsPerProc) << " " << a.workUnitName
       << "/processor ("
       << (a.loadBalanceOk ? "load balance fine" : "load balance at risk")
       << ")";
    return os.str();
}

} // namespace

GrainAssessment
assessLu(const LuParams &params)
{
    LuModel model(params);
    GrainAssessment a;
    a.app = "LU";
    a.grainBytes = model.grainBytes();
    a.commToCompRatio = model.commToCompRatio();
    a.sustainability = classifySustainability(a.commToCompRatio);
    a.workUnitsPerProc = model.blocksPerProcessor();
    a.workUnitName = "blocks";
    a.loadBalanceOk = a.workUnitsPerProc >= kLuBlocksComfort;
    a.verdict = verdictString(a);
    return a;
}

GrainAssessment
assessCg(const CgParams &params)
{
    CgModel model(params);
    GrainAssessment a;
    a.app = params.dims == 2 ? "CG 2-D" : "CG 3-D";
    a.grainBytes = model.grainBytes();
    a.commToCompRatio = model.commToCompRatio();
    a.sustainability = classifySustainability(a.commToCompRatio);
    double side = model.pointsPerSide();
    a.workUnitsPerProc =
        params.dims == 2 ? side * side : side * side * side;
    a.workUnitName = "grid points";
    a.loadBalanceOk = a.workUnitsPerProc >= 64.0;
    a.verdict = verdictString(a);
    return a;
}

GrainAssessment
assessFft(const FftParams &params)
{
    FftModel model(params);
    GrainAssessment a;
    a.app = "FFT";
    a.grainBytes = model.grainBytes();
    a.commToCompRatio = model.exactCommToCompRatio();
    a.sustainability = classifySustainability(a.commToCompRatio);
    a.workUnitsPerProc = model.pointsPerProc();
    a.workUnitName = "points";
    a.loadBalanceOk = a.workUnitsPerProc >= 2.0;
    a.verdict = verdictString(a);
    return a;
}

GrainAssessment
assessBarnes(const BarnesParams &params)
{
    BarnesModel model(params);
    GrainAssessment a;
    a.app = "Barnes-Hut";
    a.grainBytes = model.grainBytes();
    // Instructions per double word of communication.
    a.commToCompRatio = 1.0 / model.wordsPerInstruction();
    a.sustainability = classifySustainability(a.commToCompRatio);
    a.workUnitsPerProc = model.particlesPerProc();
    a.workUnitName = "particles";
    a.loadBalanceOk = a.workUnitsPerProc >= kBarnesParticlesComfort;
    a.verdict = verdictString(a);
    return a;
}

GrainAssessment
assessVolrend(const VolrendParams &params)
{
    VolrendModel model(params);
    GrainAssessment a;
    a.app = "Volume Rendering";
    a.grainBytes = model.grainBytes();
    a.commToCompRatio = model.instructionsPerCommWord();
    a.sustainability = classifySustainability(a.commToCompRatio);
    a.workUnitsPerProc = model.raysPerProc();
    a.workUnitName = "rays";
    a.loadBalanceOk = a.workUnitsPerProc >= kVolrendRaysComfort;
    a.verdict = verdictString(a);
    return a;
}

} // namespace wsg::model
