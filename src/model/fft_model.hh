/**
 * @file
 * Analytical model of the parallel 1-D complex FFT (Section 5).
 *
 * The parallel algorithm is a radix-D computation (D = N/P points per
 * processor) whose log D local stages are grouped by a smaller *internal
 * radix* r for cache locality. Working sets:
 *
 *   lev1WS  one internal-radix group: r complex points + r-1 complex
 *           twiddles                        (2r + 2(r-1)) * 8 bytes
 *   lev2WS  the processor's D points       2 * D * 8 bytes
 *
 * Miss metric: double-word read misses per FLOP (5 N log2 N total ops).
 * Once lev1WS fits, a radix-r pass reads 2r point words + 2(r-1) twiddle
 * words per r-point group of 5 r log2 r ops:
 *
 *   misses/op = (4r - 2) / (5 r log2 r)
 *
 * which reproduces the paper's 0.6 / 0.25 / 0.15 for r = 2 / 8 / 32.
 */

#ifndef WSG_MODEL_FFT_MODEL_HH
#define WSG_MODEL_FFT_MODEL_HH

#include <cstdint>
#include <vector>

#include "model/app_model.hh"

namespace wsg::model
{

/** Problem instance for the FFT model. */
struct FftParams
{
    /** Transform length; power of two. */
    std::uint64_t N = std::uint64_t{1} << 26;
    /** Processor count; power of two, P <= N. */
    std::uint64_t P = 1024;
    /** Internal radix; power of two, >= 2. */
    std::uint32_t radix = 8;
};

/** Closed-form characterization of the radix-D parallel FFT. */
class FftModel
{
  public:
    explicit FftModel(const FftParams &params) : p_(params) {}

    const FftParams &params() const { return p_; }

    std::vector<WsLevel> workingSets() const;
    double initialMissRate() const;
    stats::Curve missCurve(const std::vector<std::uint64_t> &sizes) const;

    /** Points per processor, D = N/P. */
    double pointsPerProc() const;

    /** Total FLOPs: 5 N log2 N. */
    double totalFlops() const;

    /** Data set size: N complex doubles (16 bytes each). */
    double dataBytes() const;
    double grainBytes() const { return dataBytes() / double(p_.P); }

    /**
     * Optimistic model ratio (5/2) log2(N/P) FLOPs per word, from the
     * per-stage analysis.
     */
    double modelCommToCompRatio() const;

    /**
     * Exact ratio accounting for stage quantization: the whole
     * computation performs 5 N log2 N ops and exchanges the 2N words
     * however many radix-D stages there actually are (minus the one
     * local stage).
     */
    double exactCommToCompRatio() const;

    /** Number of radix-D exchange stages: ceil(log N / log D) - 1. */
    int numExchangeStages() const;

    /**
     * Grain size (points per processor) needed to reach a target ratio R:
     * N/P = 2^(2R/5) — the paper's exponential-growth observation.
     */
    static double pointsPerProcForRatio(double ratio);

    /** Misses/FLOP floor from inherent communication. */
    double commMissRate() const { return 1.0 / exactCommToCompRatio(); }

    static GrowthRates growthRates();

  private:
    FftParams p_;
};

} // namespace wsg::model

#endif // WSG_MODEL_FFT_MODEL_HH
