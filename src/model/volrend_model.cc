#include "model/volrend_model.hh"

#include <algorithm>
#include <cmath>

namespace wsg::model
{

namespace
{

/** Per-ray reuse window: "about 0.4 Kbytes". */
constexpr double kLev1Bytes = 400.0;
/** Read miss rate once lev1WS fits: "about 15%". */
constexpr double kAfterLev1Rate = 0.15;
/** Read miss rate once lev2WS fits: "about 2%". */
constexpr double kAfterLev2Rate = 0.02;
/**
 * Fraction of the per-processor voxel share a processor references in one
 * frame (lev3WS). Calibrated to the paper's ~700 KB for the 256x256x113
 * head on 4 processors.
 */
constexpr double kLev3Fraction = 0.19;

} // namespace

std::vector<WsLevel>
VolrendModel::workingSets() const
{
    std::vector<WsLevel> levels;
    levels.push_back({"lev1WS", kLev1Bytes, kAfterLev1Rate,
                      "voxel/octree data reused along a ray"});
    levels.push_back({"lev2WS", lev2Bytes(), kAfterLev2Rate,
                      "data shared by successive rays"});
    double lev3 = std::max(lev2Bytes() * 2.0,
                           kLev3Fraction * dataBytes() / p_.P);
    levels.push_back({"lev3WS", lev3, commMissRate(),
                      "voxels referenced per frame (cross-frame reuse)"});
    return levels;
}

stats::Curve
VolrendModel::missCurve(const std::vector<std::uint64_t> &sizes) const
{
    return stepCurveFromLevels("Volume rendering", initialMissRate(),
                               workingSets(), sizes);
}

GrowthRates
VolrendModel::growthRates()
{
    return {"Volume Rendering", "n^3", "n^3", "n^2", "n^3", "n"};
}

} // namespace wsg::model
