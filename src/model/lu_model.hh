/**
 * @file
 * Analytical model of blocked dense LU factorization (paper Section 3).
 *
 * Working-set hierarchy (all sizes in bytes, double precision):
 *   lev1WS  two columns of a B x B block            2 * B * 8
 *   lev2WS  one whole block                         B * B * 8
 *   lev3WS  the row/column-K blocks a processor
 *           uses in one K iteration                 2 n B / sqrt(P) * 8
 *   lev4WS  all blocks owned by a processor         n^2 / P * 8
 *
 * Miss metric: double-word read misses per FLOP. Plateaus:
 *   below lev1: ~1 (both operand elements stream on every multiply-add)
 *   >= lev1:   ~1/2 (one column reused)
 *   >= lev2:   ~1/B (each block element reused across a whole block mult)
 *   >= lev3:   ~1/(2B)
 *   >= lev4:   communication rate 3 sqrt(P) / (2 n)
 */

#ifndef WSG_MODEL_LU_MODEL_HH
#define WSG_MODEL_LU_MODEL_HH

#include <cstdint>
#include <vector>

#include "model/app_model.hh"
#include "model/machine_model.hh"

namespace wsg::model
{

/** Problem instance for the LU model. */
struct LuParams
{
    /** Matrix dimension (n x n). */
    std::uint64_t n = 10000;
    /** Number of processors (2-D scatter over a sqrt(P) grid). */
    std::uint64_t P = 1024;
    /** Block size. */
    std::uint32_t B = 16;
};

/** Closed-form characterization of dense blocked LU. */
class LuModel
{
  public:
    explicit LuModel(const LuParams &params) : p_(params) {}

    const LuParams &params() const { return p_; }

    /** Working-set hierarchy, smallest level first. */
    std::vector<WsLevel> workingSets() const;

    /** Misses/FLOP with a cache too small for any working set. */
    double initialMissRate() const;

    /** Misses/FLOP versus cache size, sampled at @p sizes. */
    stats::Curve missCurve(const std::vector<std::uint64_t> &sizes) const;

    /** Total floating-point operations: 2 n^3 / 3. */
    double totalFlops() const;

    /** Total data set size in bytes: n^2 doubles. */
    double dataBytes() const;

    /** Grain size: bytes of matrix data per processor. */
    double grainBytes() const { return dataBytes() / double(p_.P); }

    /** Total communication volume in double words: n^2 sqrt(P). */
    double commWords() const;

    /** Computation-to-communication ratio, FLOPs per double word:
     *  2 n / (3 sqrt(P)). */
    double commToCompRatio() const;

    /** Misses/FLOP floor once everything local fits: 3 sqrt(P) / (2 n). */
    double commMissRate() const { return 1.0 / commToCompRatio(); }

    /** Blocks of the matrix assigned to each processor (load balance). */
    double blocksPerProcessor() const;

    /** Table 1 row. */
    static GrowthRates growthRates();

  private:
    LuParams p_;
};

} // namespace wsg::model

#endif // WSG_MODEL_LU_MODEL_HH
