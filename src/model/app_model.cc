#include "model/app_model.hh"

namespace wsg::model
{

double
rateAtSize(double initial_rate, const std::vector<WsLevel> &levels,
           double cache_bytes)
{
    double rate = initial_rate;
    for (const auto &lev : levels) {
        if (cache_bytes >= lev.sizeBytes)
            rate = lev.missRateAfter;
    }
    return rate;
}

stats::Curve
stepCurveFromLevels(const std::string &name, double initial_rate,
                    const std::vector<WsLevel> &levels,
                    const std::vector<std::uint64_t> &sizes)
{
    stats::Curve curve(name);
    for (auto bytes : sizes) {
        curve.addPoint(static_cast<double>(bytes),
                       rateAtSize(initial_rate, levels,
                                  static_cast<double>(bytes)));
    }
    return curve;
}

} // namespace wsg::model
