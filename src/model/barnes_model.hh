/**
 * @file
 * Analytical model of the Barnes-Hut hierarchical N-body method
 * (Section 6).
 *
 * Working sets:
 *   lev1WS  interaction scratch state: ~0.7 KB, independent of n, theta
 *           and p
 *   lev2WS  tree data needed to compute the force on one particle,
 *           proportional to interactions per particle:
 *               size = kLev2Coeff * (1/theta^2) * log10(n)
 *           (kLev2Coeff calibrated to the paper: 32 KB at n = 64K,
 *           theta = 1.0)
 *   lev3WS  max(partition data, data needed for all of a partition's
 *           forces) — unimportant to performance, reported for
 *           completeness
 *
 * Miss metric: read miss rate. Plateaus (from the paper's simulations):
 * ~100% with no cache, ~20% after lev1WS, near the inherent communication
 * rate after lev2WS.
 *
 * Scaling rule (quadrupole moments): scaling n by s scales theta by
 * s^(-1/8) (force error theta^4 tracks the n^(-1/2) sampling error) and
 * dt by s^(-1/2); both working set and execution time follow.
 */

#ifndef WSG_MODEL_BARNES_MODEL_HH
#define WSG_MODEL_BARNES_MODEL_HH

#include <cstdint>
#include <vector>

#include "model/app_model.hh"

namespace wsg::model
{

/** Problem instance for the Barnes-Hut model. */
struct BarnesParams
{
    /** Particle count. */
    double n = 64.0 * 1024.0;
    /** Opening-criterion accuracy parameter. */
    double theta = 1.0;
    /** Processor count. */
    double P = 64.0;
    /** Time-step scale factor relative to the base problem (1.0). */
    double dt = 1.0;
};

/** Closed-form characterization of Barnes-Hut. */
class BarnesModel
{
  public:
    explicit BarnesModel(const BarnesParams &params) : p_(params) {}

    const BarnesParams &params() const { return p_; }

    std::vector<WsLevel> workingSets() const;
    double initialMissRate() const { return 1.0; }
    stats::Curve missCurve(const std::vector<std::uint64_t> &sizes) const;

    /** lev2WS size in bytes for the current parameters. */
    double lev2Bytes() const;

    /** Bytes per particle (quadrupole moments): ~230. */
    static double bytesPerParticle() { return 230.0; }

    double dataBytes() const { return p_.n * bytesPerParticle(); }
    double grainBytes() const { return dataBytes() / p_.P; }

    /** Interactions per particle per time-step: (1/theta^2) log2 n. */
    double interactionsPerParticle() const;

    /** Instructions per time-step: 80 per interaction (quadrupole). */
    double instructionsPerTimestep() const;

    /**
     * Communication per processor per time-step, in "units" of 3 double
     * words (paper: n^(1/3) theta^3 / p^(1/3) * log^(4/3) p, with a
     * calibrated constant).
     */
    double commUnitsPerProcPerStep() const;

    /**
     * Communication-to-computation ratio in double words per instruction
     * (the paper quotes "1 double word per 10,000 busy cycles" for the
     * 4.5M-particle prototypical problem).
     */
    double wordsPerInstruction() const;

    /** Particles per processor (load-balance/work-unit metric). */
    double particlesPerProc() const { return p_.n / p_.P; }

    /** Read-miss-rate floor from inherent communication. */
    double commMissRate() const;

    static GrowthRates growthRates();

  private:
    BarnesParams p_;
};

} // namespace wsg::model

#endif // WSG_MODEL_BARNES_MODEL_HH
