#include "sim/coherence.hh"

#include <bit>

namespace wsg::sim
{

namespace
{

/**
 * MSI (and, via aliasing, the paper's write-invalidate). A write
 * purges every other sharer and takes the line Modified; a write from
 * Shared costs an upgrade message; reads join the sharer set and
 * downgrade a remote Modified holder to Shared.
 */
class MsiPolicy : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        if (is_write) {
            actions.invalidateMask = line.sharers & ~self;
            actions.upgrade = (line.sharers & self) != 0 &&
                              line.exclusivePlusOne != pid + 1;
            line.sharers = self;
            line.exclusivePlusOne = pid + 1;
        } else {
            line.sharers |= self;
            if (line.exclusivePlusOne != pid + 1)
                line.exclusivePlusOne = 0;
        }
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Msi;
    }
};

/**
 * MESI: MSI with an Exclusive state. A read that finds no other
 * cached copy installs the line Exclusive, so this processor's next
 * write upgrades silently — identical miss counts to MSI on every
 * trace, fewer upgrade messages.
 */
class MesiPolicy : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        if (is_write) {
            actions.invalidateMask = line.sharers & ~self;
            actions.upgrade = (line.sharers & self) != 0 &&
                              line.exclusivePlusOne != pid + 1;
            line.sharers = self;
            line.exclusivePlusOne = pid + 1;
        } else if (line.sharers == 0) {
            // Read miss with no other cached copy: Exclusive grant.
            line.sharers = self;
            line.exclusivePlusOne = pid + 1;
        } else {
            line.sharers |= self;
            if (line.exclusivePlusOne != pid + 1)
                line.exclusivePlusOne = 0;
        }
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Mesi;
    }
};

/**
 * MI: the line has exactly one holder at a time. Any access — reads
 * included — purges every other holder, so even read-read sharing
 * ping-pongs the line. Ownership always transfers with the data, so
 * there are no upgrade messages.
 */
class MiPolicy : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool /*is_write*/) const override
    {
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        actions.invalidateMask = line.sharers & ~self;
        line.sharers = self;
        line.exclusivePlusOne = pid + 1;
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Mi;
    }
};

/**
 * Write-update: sharers keep valid copies; each write to a shared
 * line sends one update message per other sharer. No invalidations,
 * so the only coherence misses left are first-touch fetches of
 * remotely produced lines (inherent communication).
 */
class WriteUpdatePolicy : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        if (is_write) {
            actions.updates = static_cast<std::uint32_t>(
                std::popcount(line.sharers & ~self));
        }
        line.sharers |= self;
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::WriteUpdate;
    }
};

} // namespace

const CoherencePolicy &
coherencePolicyFor(CoherenceProtocol protocol)
{
    static const MsiPolicy msi;
    static const MesiPolicy mesi;
    static const MiPolicy mi;
    static const WriteUpdatePolicy update;
    switch (protocol) {
      case CoherenceProtocol::WriteUpdate: return update;
      case CoherenceProtocol::Mi: return mi;
      case CoherenceProtocol::Mesi: return mesi;
      case CoherenceProtocol::WriteInvalidate:
      case CoherenceProtocol::Msi: break;
    }
    return msi;
}

} // namespace wsg::sim
