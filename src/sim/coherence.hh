/**
 * @file
 * Pluggable coherence protocols for the multiprocessor simulator.
 *
 * The paper's apparatus hard-wires one protocol (write-invalidate);
 * this interface factors the directory's protocol decisions out of
 * sim::Multiprocessor so the protocol becomes a swappable study axis,
 * FlexiCAS-style: the simulator owns the directory storage and the
 * profiler/cache plumbing, the policy owns the state transitions and
 * the message accounting.
 *
 * The policy operates on a per-line LineState (sharer mask plus the
 * exclusive/modified holder) and returns the actions the machine must
 * carry out: which processors lose their copies, how many update or
 * upgrade messages the access costs. Miss *classification* stays in
 * the simulator — every protocol feeds the same Dubois true/false
 * split and the same cold/capacity/coherence accounting, which is what
 * keeps the sum identity (cold + capacity + true + false == total)
 * protocol-independent.
 *
 * Protocol semantics at line granularity:
 *  - Msi: writes invalidate all other sharers; reads join the sharer
 *    set. This is exactly the paper's write-invalidate model —
 *    WriteInvalidate is an alias resolved to the same policy, so every
 *    golden study is preserved byte for byte. A write while in S costs
 *    an upgrade message.
 *  - Mesi: identical invalidation behaviour (miss counts match MSI on
 *    every trace); a read miss with no other sharers installs the line
 *    Exclusive, so the first write by that processor upgrades
 *    silently. The protocols differ only in upgradesSent.
 *  - Mi: no shared state at all — *any* access (reads included) purges
 *    every other holder, so read-read sharing ping-pongs. Coherence
 *    misses are a pointwise superset of MSI's: MI's tombstone set
 *    contains MSI's at every trace prefix because "someone accessed
 *    since" contains "someone wrote since".
 *  - WriteUpdate: writes update sharers in place (one message per
 *    other sharer, no invalidations; coherence misses reduce to the
 *    first-touch inherent-communication floor).
 */

#ifndef WSG_SIM_COHERENCE_HH
#define WSG_SIM_COHERENCE_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wsg::sim
{

/** Coherence protocol family. */
enum class CoherenceProtocol : std::uint8_t
{
    /** Writes invalidate other sharers; their next access misses (the
     *  paper's implicit model). Resolved to the Msi policy — the two
     *  are the same machine, so studies are field-identical. */
    WriteInvalidate,
    /** Writes update other sharers' copies in place: no
     *  invalidation-induced misses, but every write to a shared line
     *  sends one update message per other sharer. */
    WriteUpdate,
    /** Modified/Invalid: any access purges all other holders. */
    Mi,
    /** Modified/Shared/Invalid: writes invalidate, reads share. */
    Msi,
    /** MESI: MSI plus a silent Exclusive->Modified upgrade. */
    Mesi,
};

/** Human-readable protocol name (also the CLI/JSON spelling). */
inline const char *
coherenceProtocolName(CoherenceProtocol protocol)
{
    switch (protocol) {
      case CoherenceProtocol::WriteUpdate: return "write-update";
      case CoherenceProtocol::Mi: return "mi";
      case CoherenceProtocol::Msi: return "msi";
      case CoherenceProtocol::Mesi: return "mesi";
      case CoherenceProtocol::WriteInvalidate: break;
    }
    return "write-invalidate";
}

/** Parse a protocol name as spelled by coherenceProtocolName (short
 *  forms "wi" and "wu" accepted). @throws std::invalid_argument. */
inline CoherenceProtocol
parseCoherenceProtocol(const std::string &name)
{
    if (name == "write-invalidate" || name == "wi")
        return CoherenceProtocol::WriteInvalidate;
    if (name == "write-update" || name == "wu")
        return CoherenceProtocol::WriteUpdate;
    if (name == "mi")
        return CoherenceProtocol::Mi;
    if (name == "msi")
        return CoherenceProtocol::Msi;
    if (name == "mesi")
        return CoherenceProtocol::Mesi;
    throw std::invalid_argument(
        "unknown coherence protocol '" + name +
        "' (expected write-invalidate, write-update, mi, msi or mesi)");
}

/**
 * Per-line protocol state, embedded in the simulator's directory
 * entry. sharers is the mask of processors that may hold a valid copy;
 * exclusivePlusOne - 1 is the processor holding the line Exclusive or
 * Modified (0 = no exclusive holder / protocol does not track one).
 */
struct LineState
{
    std::uint64_t sharers = 0;
    std::uint32_t exclusivePlusOne = 0;
};

/**
 * What an access obliges the machine to do. invalidateMask drives the
 * profiler/cache invalidations (and therefore the coherence-miss
 * tombstones); the message counters are bookkeeping only and never
 * affect miss counts.
 */
struct CoherenceActions
{
    /** Processors whose copies must be purged. */
    std::uint64_t invalidateMask = 0;
    /** Write-update messages sent (one per other sharer). */
    std::uint32_t updates = 0;
    /** True when the access is an ownership upgrade (S->M) message. */
    bool upgrade = false;
};

/**
 * A coherence protocol's state machine. Implementations are stateless
 * (all per-line state lives in LineState), so one shared instance
 * serves every simulator — obtain it from coherencePolicyFor().
 */
class CoherencePolicy
{
  public:
    virtual ~CoherencePolicy() = default;

    /**
     * Apply one access by @p pid to @p line and report the required
     * actions. Called for every reference, measuring or not, so the
     * directory state always tracks the reference stream exactly.
     */
    virtual CoherenceActions onAccess(LineState &line, std::uint32_t pid,
                                      bool is_write) const = 0;

    /** The protocol this policy implements. */
    virtual CoherenceProtocol protocol() const = 0;
};

/** Shared policy instance for @p protocol (WriteInvalidate resolves to
 *  the Msi policy; see the file comment). */
const CoherencePolicy &coherencePolicyFor(CoherenceProtocol protocol);

} // namespace wsg::sim

#endif // WSG_SIM_COHERENCE_HH
