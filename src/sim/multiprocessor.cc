#include "sim/multiprocessor.hh"

#include "memsys/fully_assoc_lru.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace wsg::sim
{

std::uint64_t
ProcStats::readMissesAt(std::uint64_t capacity_lines,
                        bool include_cold) const
{
    std::uint64_t misses = readDistances.countAtLeast(capacity_lines);
    misses += readCoherence;
    if (include_cold)
        misses += readCold;
    return misses;
}

std::uint64_t
ProcStats::writeMissesAt(std::uint64_t capacity_lines,
                         bool include_cold) const
{
    std::uint64_t misses = writeDistances.countAtLeast(capacity_lines);
    misses += writeCoherence;
    if (include_cold)
        misses += writeCold;
    return misses;
}

Multiprocessor::Multiprocessor(const SimConfig &config)
    : config_(config),
      policy_(&coherencePolicyFor(config.protocol)),
      stats_(config.numProcs)
{
    if (config_.numProcs == 0 || config_.numProcs > 64)
        throw std::invalid_argument(
            "Multiprocessor: numProcs must be in [1, 64] (directory "
            "entries are 64-bit sharer masks); larger machines are "
            "handled by the analytical models");
    if (config_.lineBytes == 0 ||
        (config_.lineBytes & (config_.lineBytes - 1)) != 0) {
        throw std::invalid_argument(
            "Multiprocessor: lineBytes must be a power of two");
    }
    config_.sampling.validate();
    config_.hierarchy.validate(config_.lineBytes);
    profilers_.reserve(config_.numProcs);
    for (std::uint32_t p = 0; p < config_.numProcs; ++p)
        profilers_.emplace_back(config_.sampling, config_.profiler);
    if (config_.hierarchy.twoLevel()) {
        // One private L1 + per-node L2 pair per processor, behind the
        // concrete-cache hooks: the profiler curves still sweep all
        // sizes, while the concrete counters describe this machine.
        memsys::InclusionPolicy inclusion =
            config_.hierarchy.kind ==
                    memsys::HierarchyKind::TwoLevelInclusive
                ? memsys::InclusionPolicy::Inclusive
                : memsys::InclusionPolicy::Exclusive;
        attachCaches([&] {
            return std::make_unique<memsys::TwoLevelCache>(
                std::make_unique<memsys::FullyAssocLru>(
                    config_.hierarchy.l1Bytes / config_.lineBytes),
                std::make_unique<memsys::FullyAssocLru>(
                    config_.hierarchy.l2Bytes / config_.lineBytes),
                inclusion);
        });
        for (const auto &cache : caches_)
            nodeCaches_.push_back(
                static_cast<const memsys::TwoLevelCache *>(cache.get()));
    }
}

void
Multiprocessor::attachCaches(
    const std::function<std::unique_ptr<memsys::Cache>()> &factory)
{
    caches_.clear();
    nodeCaches_.clear();
    caches_.reserve(config_.numProcs);
    for (std::uint32_t p = 0; p < config_.numProcs; ++p)
        caches_.push_back(factory());
}

void
Multiprocessor::access(const MemRef &ref)
{
    if (ref.pid >= config_.numProcs)
        throw std::out_of_range(
            "Multiprocessor::access: pid exceeds configured processor "
            "count");
    Addr ref_last = ref.addr + std::max(ref.bytes, 1u) - 1;
    Addr first = memsys::lineAlign(ref.addr, config_.lineBytes);
    Addr last = memsys::lineAlign(ref_last, config_.lineBytes);
    // Caches and profilers operate on line *numbers* so set-indexed
    // organizations see dense indices regardless of the line size.
    for (Addr line = first; line <= last; line += config_.lineBytes) {
        // Bitmap of the 8-byte words this access covers within the
        // line, for the true/false-sharing split. Lines of 8 bytes or
        // less are a single word; lines wider than 512 B clamp to
        // 64-word granularity.
        Addr lo = std::max(ref.addr, line);
        Addr hi = std::min(ref_last, line + config_.lineBytes - 1);
        std::uint64_t lo_w = std::min<std::uint64_t>((lo - line) / 8, 63);
        std::uint64_t hi_w = std::min<std::uint64_t>((hi - line) / 8, 63);
        std::uint64_t words =
            (hi_w - lo_w == 63)
                ? ~std::uint64_t{0}
                : ((std::uint64_t{1} << (hi_w - lo_w + 1)) - 1) << lo_w;
        accessLine(ref.pid, line / config_.lineBytes, ref.isWrite(),
                   words, lo);
    }
}

void
Multiprocessor::accessBatch(const MemRef *refs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        access(refs[i]);
}

void
Multiprocessor::accessLine(ProcId pid, Addr line, bool is_write,
                           std::uint64_t words, Addr byte_addr)
{
    DirEntry &entry = directory_[line];
    std::uint64_t self = std::uint64_t{1} << pid;

    // Claim the words others wrote to this line while this processor
    // was invalidated off it — the evidence the Dubois split judges an
    // invalidation-induced coherence miss by. Claimed on every access
    // (measuring or not) so the pending state tracks the profiler's
    // tombstones exactly. The flag (not the mask) records the claim:
    // MI's read-triggered invalidations leave zero-word pending masks,
    // which must still classify against the pending interval rather
    // than fall back to the line's lifetime write set.
    bool was_invalidated = (entry.pendingProcs & self) != 0;
    std::uint64_t invalidated_words = 0;
    if (was_invalidated) {
        auto it = pendingWords_.find(line * 64 + pid);
        invalidated_words = it->second;
        pendingWords_.erase(it);
        entry.pendingProcs &= ~self;
    }

    // The protocol decides the transition; the simulator carries out
    // the purges and keeps the Dubois pending-word bookkeeping in sync
    // with the tombstones the purges create.
    CoherenceActions actions = policy_->onAccess(entry.state, pid,
                                                 is_write);
    std::uint64_t victims = actions.invalidateMask;
    while (victims) {
        unsigned victim =
            static_cast<unsigned>(std::countr_zero(victims));
        victims &= victims - 1;
        profilers_[victim].invalidate(line);
        if (!caches_.empty())
            caches_[victim]->invalidate(line);
    }
    if (is_write &&
        config_.protocol != CoherenceProtocol::WriteUpdate) {
        // Every processor now holding a stale copy — just invalidated
        // or still away from an earlier invalidation — accumulates
        // this write's words in its pending mask.
        std::uint64_t stale =
            (entry.pendingProcs | actions.invalidateMask) & ~self;
        std::uint64_t it_mask = stale;
        while (it_mask) {
            unsigned p =
                static_cast<unsigned>(std::countr_zero(it_mask));
            it_mask &= it_mask - 1;
            pendingWords_[line * 64 + p] |= words;
        }
        entry.pendingProcs = stale;
    } else if (actions.invalidateMask != 0) {
        // Read-triggered invalidation (MI): the victims enter the
        // pending state with empty word masks — nothing was written,
        // so their return misses are pure protocol artifacts.
        std::uint64_t it_mask = actions.invalidateMask;
        while (it_mask) {
            unsigned p =
                static_cast<unsigned>(std::countr_zero(it_mask));
            it_mask &= it_mask - 1;
            pendingWords_.try_emplace(line * 64 + p, 0);
        }
        entry.pendingProcs |= actions.invalidateMask;
    }
    if (measuring_) {
        ProcStats &st = stats_[pid];
        st.updatesSent += actions.updates;
        st.invalidationsSent += static_cast<std::uint64_t>(
            std::popcount(actions.invalidateMask));
        st.upgradesSent += actions.upgrade ? 1 : 0;
    }

    approx::SampledSample sampled = profilers_[pid].access(line);
    memsys::DistanceSample sample = sampled.sample;

    // A first-ever touch of a line that some *other* processor produced
    // is inherent communication, not a cold miss: on a real machine it
    // is a remote fetch at any cache size. (Invalidation-induced misses
    // are already classified Coherence by the profiler.)
    if (sampled.admitted && sample.kind == memsys::RefClass::Cold &&
        entry.writerPlusOne != 0 && entry.writerPlusOne != pid + 1) {
        sample.kind = memsys::RefClass::Coherence;
    }
    // True sharing iff the accessed words intersect the remotely
    // produced ones. For an invalidation-induced miss those are the
    // pending words claimed above; for a first touch of a remotely
    // written line they are all words ever written (a first touch means
    // this profiler never accessed the line, so every one of those
    // writes was another processor's). Evaluated before this access's
    // own write merges into writtenWords.
    bool true_sharing =
        (words & (was_invalidated ? invalidated_words
                                  : entry.writtenWords)) != 0;
    if (is_write) {
        entry.writtenWords |= words;
        entry.writerPlusOne = pid + 1;
    }

    bool concrete_miss = false;
    if (!caches_.empty()) {
        concrete_miss =
            caches_[pid]->access(line) == memsys::AccessOutcome::Miss;
    }

    if (!measuring_)
        return;

    // reads/writes count every measured reference exactly — they are
    // the denominators the estimator rescales against. Classification
    // is only known for admitted references.
    ProcStats &st = stats_[pid];
    SharingSummary *arr = arraySlot(byte_addr);
    if (is_write) {
        ++st.writes;
        if (arr)
            ++arr->writes;
        if (sampled.admitted) {
            ++st.sampledWrites;
            switch (sample.kind) {
              case memsys::RefClass::Finite:
                st.writeDistances.addSample(sample.distance);
                break;
              case memsys::RefClass::Cold:
                ++st.writeCold;
                if (arr)
                    ++arr->writeCold;
                break;
              case memsys::RefClass::Coherence:
                ++st.writeCoherence;
                if (true_sharing) {
                    ++st.writeTrueSharing;
                    if (arr)
                        ++arr->writeTrueSharing;
                } else {
                    ++st.writeFalseSharing;
                    if (arr)
                        ++arr->writeFalseSharing;
                }
                break;
            }
        }
        if (concrete_miss)
            ++st.concreteWriteMisses;
    } else {
        ++st.reads;
        if (arr)
            ++arr->reads;
        if (sampled.admitted) {
            ++st.sampledReads;
            switch (sample.kind) {
              case memsys::RefClass::Finite:
                st.readDistances.addSample(sample.distance);
                break;
              case memsys::RefClass::Cold:
                ++st.readCold;
                if (arr)
                    ++arr->readCold;
                break;
              case memsys::RefClass::Coherence:
                ++st.readCoherence;
                if (true_sharing) {
                    ++st.readTrueSharing;
                    if (arr)
                        ++arr->readTrueSharing;
                } else {
                    ++st.readFalseSharing;
                    if (arr)
                        ++arr->readFalseSharing;
                }
                break;
            }
        }
        if (concrete_miss)
            ++st.concreteReadMisses;
    }
}

SharingSummary *
Multiprocessor::arraySlot(Addr byte_addr)
{
    if (!space_ || !measuring_)
        return nullptr;
    std::ptrdiff_t idx = space_->findSegmentIndex(byte_addr);
    if (idx < 0)
        return &unmappedStats_;
    if (static_cast<std::size_t>(idx) >= arrayStats_.size())
        arrayStats_.resize(space_->segments().size());
    return &arrayStats_[static_cast<std::size_t>(idx)];
}

namespace
{

/**
 * Evaluate y(cache size) at every sweep point — through the spec's
 * parallel-for hook when one is attached — and assemble the curve in
 * index order so the result is identical either way.
 */
stats::Curve
evalCurvePoints(const CurveSpec &spec, const std::string &name,
                const std::function<double(std::uint64_t)> &y_at)
{
    stats::Curve curve(name);
    std::vector<double> ys(spec.cacheSizesBytes.size(), 0.0);
    auto eval_point = [&](std::size_t i) {
        ys[i] = y_at(spec.cacheSizesBytes[i]);
    };
    if (spec.parallelFor) {
        spec.parallelFor(ys.size(), eval_point);
    } else {
        for (std::size_t i = 0; i < ys.size(); ++i)
            eval_point(i);
    }
    for (std::size_t i = 0; i < ys.size(); ++i)
        curve.addPoint(static_cast<double>(spec.cacheSizesBytes[i]),
                       ys[i]);
    return curve;
}

} // namespace

ProcStats
Multiprocessor::aggregateStats() const
{
    ProcStats agg;
    for (const auto &st : stats_) {
        agg.reads += st.reads;
        agg.writes += st.writes;
        agg.sampledReads += st.sampledReads;
        agg.sampledWrites += st.sampledWrites;
        agg.readCold += st.readCold;
        agg.readCoherence += st.readCoherence;
        agg.writeCold += st.writeCold;
        agg.writeCoherence += st.writeCoherence;
        agg.readTrueSharing += st.readTrueSharing;
        agg.readFalseSharing += st.readFalseSharing;
        agg.writeTrueSharing += st.writeTrueSharing;
        agg.writeFalseSharing += st.writeFalseSharing;
        agg.readDistances.merge(st.readDistances);
        agg.writeDistances.merge(st.writeDistances);
        agg.concreteReadMisses += st.concreteReadMisses;
        agg.concreteWriteMisses += st.concreteWriteMisses;
        agg.updatesSent += st.updatesSent;
        agg.invalidationsSent += st.invalidationsSent;
        agg.upgradesSent += st.upgradesSent;
    }
    return agg;
}

void
Multiprocessor::checkSpecSampling(const CurveSpec &spec) const
{
    if (spec.sampling.mode != config_.sampling.mode) {
        throw std::invalid_argument(
            "CurveSpec: sampling mode does not match the simulator's "
            "(scaling sampled counts as exact, or vice versa, corrupts "
            "the curve; set CurveSpec::sampling = "
            "Multiprocessor::config().sampling)");
    }
}

double
Multiprocessor::expectedSampledReads() const
{
    switch (config_.sampling.mode) {
      case approx::SamplingMode::FixedSize: {
        // SHARDS_adj: early references were admitted at rates above the
        // final one; normalizing by refs * final_rate (per processor)
        // removes that inflation.
        double expected = 0.0;
        for (std::uint32_t p = 0; p < config_.numProcs; ++p)
            expected += static_cast<double>(stats_[p].reads) *
                        profilers_[p].effectiveRate();
        return expected;
      }
      case approx::SamplingMode::FixedRate: {
        // Divide by the *expected* sample count (refs * rate), not the
        // actual one: sampled misses scale with the fraction of *lines*
        // admitted, so E[misses] = rate * misses regardless of how many
        // references those lines happened to carry. Normalizing by the
        // actual count would fold the (correlated) reference-weight
        // fluctuation of this hash draw into the whole curve level.
        std::uint64_t reads = 0;
        for (const ProcStats &st : stats_)
            reads += st.reads;
        return static_cast<double>(reads) * config_.sampling.rate;
      }
      case approx::SamplingMode::None: break;
    }
    std::uint64_t reads = 0;
    for (const ProcStats &st : stats_)
        reads += st.reads;
    return static_cast<double>(reads);
}

double
Multiprocessor::expectedSampledWrites() const
{
    switch (config_.sampling.mode) {
      case approx::SamplingMode::FixedSize: {
        double expected = 0.0;
        for (std::uint32_t p = 0; p < config_.numProcs; ++p)
            expected += static_cast<double>(stats_[p].writes) *
                        profilers_[p].effectiveRate();
        return expected;
      }
      case approx::SamplingMode::FixedRate: {
        std::uint64_t writes = 0;
        for (const ProcStats &st : stats_)
            writes += st.writes;
        return static_cast<double>(writes) * config_.sampling.rate;
      }
      case approx::SamplingMode::None: break;
    }
    std::uint64_t writes = 0;
    for (const ProcStats &st : stats_)
        writes += st.writes;
    return static_cast<double>(writes);
}

approx::SampledCounts
Multiprocessor::readCounts(const ProcStats &agg) const
{
    approx::SampledCounts counts;
    counts.distances = &agg.readDistances;
    counts.cold = agg.readCold;
    counts.coherence = agg.readCoherence;
    counts.sampledRefs = agg.sampledReads;
    counts.totalRefs = agg.reads;
    counts.expectedSampledRefs = expectedSampledReads();
    return counts;
}

approx::SampledCounts
Multiprocessor::writeCounts(const ProcStats &agg) const
{
    approx::SampledCounts counts;
    counts.distances = &agg.writeDistances;
    counts.cold = agg.writeCold;
    counts.coherence = agg.writeCoherence;
    counts.sampledRefs = agg.sampledWrites;
    counts.totalRefs = agg.writes;
    counts.expectedSampledRefs = expectedSampledWrites();
    return counts;
}

std::uint64_t
Multiprocessor::aetReadMisses(std::uint64_t capacity_lines,
                              bool include_cold) const
{
    std::uint64_t misses = 0;
    for (std::uint32_t p = 0; p < config_.numProcs; ++p) {
        misses += stats_[p].readDistances.countAtLeast(
            profilers_[p].capacityToThreshold(capacity_lines));
        misses += stats_[p].readCoherence;
        if (include_cold)
            misses += stats_[p].readCold;
    }
    return misses;
}

std::uint64_t
Multiprocessor::aetWriteMisses(std::uint64_t capacity_lines,
                               bool include_cold) const
{
    std::uint64_t misses = 0;
    for (std::uint32_t p = 0; p < config_.numProcs; ++p) {
        misses += stats_[p].writeDistances.countAtLeast(
            profilers_[p].capacityToThreshold(capacity_lines));
        misses += stats_[p].writeCoherence;
        if (include_cold)
            misses += stats_[p].writeCold;
    }
    return misses;
}

stats::Curve
Multiprocessor::readMissRateCurve(const CurveSpec &spec,
                                  const std::string &name) const
{
    checkSpecSampling(spec);
    ProcStats agg = aggregateStats();
    if (agg.reads == 0)
        return stats::Curve(name);
    approx::ApproxCurve scaler(samplingDiagnostics());
    approx::SampledCounts counts = readCounts(agg);
    if (config_.profiler == memsys::ProfilerKind::Aet) {
        return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
            std::uint64_t lines = std::max<std::uint64_t>(
                1, bytes / config_.lineBytes);
            return scaler.missRateFromMisses(
                counts, aetReadMisses(lines, spec.includeCold));
        });
    }
    return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
        std::uint64_t lines = std::max<std::uint64_t>(
            1, bytes / config_.lineBytes);
        return scaler.missRate(counts, lines, spec.includeCold);
    });
}

stats::Curve
Multiprocessor::procReadMissRateCurve(ProcId pid, const CurveSpec &spec,
                                      const std::string &name) const
{
    checkSpecSampling(spec);
    const ProcStats &st = stats_[pid];
    if (st.reads == 0)
        return stats::Curve(name);
    approx::ApproxCurve scaler(samplingDiagnostics());
    approx::SampledCounts counts;
    counts.distances = &st.readDistances;
    counts.cold = st.readCold;
    counts.coherence = st.readCoherence;
    counts.sampledRefs = st.sampledReads;
    counts.totalRefs = st.reads;
    switch (config_.sampling.mode) {
      case approx::SamplingMode::FixedSize:
        counts.expectedSampledRefs =
            static_cast<double>(st.reads) *
            profilers_[pid].effectiveRate();
        break;
      case approx::SamplingMode::FixedRate:
        counts.expectedSampledRefs =
            static_cast<double>(st.reads) * config_.sampling.rate;
        break;
      case approx::SamplingMode::None:
        counts.expectedSampledRefs = static_cast<double>(st.reads);
        break;
    }
    if (config_.profiler == memsys::ProfilerKind::Aet) {
        return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
            std::uint64_t lines = std::max<std::uint64_t>(
                1, bytes / config_.lineBytes);
            std::uint64_t misses = st.readDistances.countAtLeast(
                profilers_[pid].capacityToThreshold(lines));
            misses += st.readCoherence;
            if (spec.includeCold)
                misses += st.readCold;
            return scaler.missRateFromMisses(counts, misses);
        });
    }
    return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
        std::uint64_t lines = std::max<std::uint64_t>(
            1, bytes / config_.lineBytes);
        return scaler.missRate(counts, lines, spec.includeCold);
    });
}

stats::Curve
Multiprocessor::missesPerFlopCurve(const CurveSpec &spec,
                                   std::uint64_t total_flops,
                                   const std::string &name) const
{
    checkSpecSampling(spec);
    ProcStats agg = aggregateStats();
    if (total_flops == 0)
        return stats::Curve(name);
    // The paper counts *double-word* misses; a wider line miss fetches
    // lineBytes/8 double words.
    double words_per_line =
        static_cast<double>(config_.lineBytes) / 8.0;
    approx::ApproxCurve scaler(samplingDiagnostics());
    approx::SampledCounts counts = readCounts(agg);
    if (config_.profiler == memsys::ProfilerKind::Aet) {
        return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
            std::uint64_t lines = std::max<std::uint64_t>(
                1, bytes / config_.lineBytes);
            return scaler.missCountFromMisses(
                       counts,
                       aetReadMisses(lines, spec.includeCold)) *
                   words_per_line / static_cast<double>(total_flops);
        });
    }
    return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
        std::uint64_t lines = std::max<std::uint64_t>(
            1, bytes / config_.lineBytes);
        return scaler.missCount(counts, lines, spec.includeCold) *
               words_per_line / static_cast<double>(total_flops);
    });
}

stats::Curve
Multiprocessor::trafficPerFlopCurve(const CurveSpec &spec,
                                    std::uint64_t total_flops,
                                    const std::string &name) const
{
    checkSpecSampling(spec);
    ProcStats agg = aggregateStats();
    if (total_flops == 0)
        return stats::Curve(name);
    approx::ApproxCurve scaler(samplingDiagnostics());
    approx::SampledCounts reads = readCounts(agg);
    approx::SampledCounts writes = writeCounts(agg);
    if (config_.profiler == memsys::ProfilerKind::Aet) {
        return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
            std::uint64_t lines = std::max<std::uint64_t>(
                1, bytes / config_.lineBytes);
            double fills = scaler.missCountFromMisses(
                reads, aetReadMisses(lines, spec.includeCold));
            double wmisses = scaler.missCountFromMisses(
                writes, aetWriteMisses(lines, spec.includeCold));
            return (fills + 2.0 * wmisses) * config_.lineBytes /
                   static_cast<double>(total_flops);
        });
    }
    return evalCurvePoints(spec, name, [&](std::uint64_t bytes) {
        std::uint64_t lines = std::max<std::uint64_t>(
            1, bytes / config_.lineBytes);
        double fills =
            scaler.missCount(reads, lines, spec.includeCold);
        double wmisses =
            scaler.missCount(writes, lines, spec.includeCold);
        return (fills + 2.0 * wmisses) * config_.lineBytes /
               static_cast<double>(total_flops);
    });
}

MissClassCurves
Multiprocessor::readMissClassCurves(const CurveSpec &spec) const
{
    checkSpecSampling(spec);
    ProcStats agg = aggregateStats();
    approx::ApproxCurve scaler(samplingDiagnostics());
    approx::SampledCounts counts = readCounts(agg);
    MissClassCurves out;
    out.cacheSizesBytes = spec.cacheSizesBytes;
    out.points.reserve(spec.cacheSizesBytes.size());
    for (std::uint64_t bytes : spec.cacheSizesBytes) {
        std::uint64_t lines =
            std::max<std::uint64_t>(1, bytes / config_.lineBytes);
        MissClassPoint p;
        p.cold = scaler.scaledCount(counts, agg.readCold);
        p.capacity = scaler.scaledCount(
            counts,
            config_.profiler == memsys::ProfilerKind::Aet
                ? aetReadMisses(lines, false) - agg.readCoherence
                : agg.readDistances.countAtLeast(lines));
        p.trueSharing =
            scaler.scaledCount(counts, agg.readTrueSharing);
        p.falseSharing =
            scaler.scaledCount(counts, agg.readFalseSharing);
        out.points.push_back(p);
    }
    return out;
}

MissClassPoint
Multiprocessor::readMissClassesAt(std::uint64_t capacity_lines) const
{
    CurveSpec spec;
    spec.cacheSizesBytes = {capacity_lines * config_.lineBytes};
    spec.sampling = config_.sampling;
    return readMissClassCurves(spec).points.front();
}

std::vector<SharingSummary>
Multiprocessor::procSummaries() const
{
    std::vector<SharingSummary> out;
    out.reserve(config_.numProcs);
    for (std::uint32_t p = 0; p < config_.numProcs; ++p) {
        const ProcStats &st = stats_[p];
        SharingSummary s;
        // Bind to an lvalue: the const char* + string&& overload trips
        // GCC 12's -Wrestrict false positive (PR 105651).
        std::string pid = std::to_string(p);
        s.name = "p" + pid;
        s.reads = st.reads;
        s.writes = st.writes;
        s.readCold = st.readCold;
        s.writeCold = st.writeCold;
        s.readTrueSharing = st.readTrueSharing;
        s.readFalseSharing = st.readFalseSharing;
        s.writeTrueSharing = st.writeTrueSharing;
        s.writeFalseSharing = st.writeFalseSharing;
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<SharingSummary>
Multiprocessor::arraySummaries() const
{
    std::vector<SharingSummary> out;
    if (!space_)
        return out;
    const auto &segments = space_->segments();
    out.resize(segments.size());
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i < arrayStats_.size())
            out[i] = arrayStats_[i];
        out[i].name = segments[i].name;
    }
    if (unmappedStats_.reads + unmappedStats_.writes > 0) {
        out.push_back(unmappedStats_);
        out.back().name = "(unmapped)";
    }
    return out;
}

std::uint64_t
Multiprocessor::footprintBytes(ProcId pid) const
{
    return profilers_[pid].estimatedTouchedLines() * config_.lineBytes;
}

approx::SamplingDiagnostics
Multiprocessor::samplingDiagnostics() const
{
    approx::SamplingDiagnostics diag;
    diag.config = config_.sampling;
    diag.profiler = config_.profiler;
    double weighted_rate = 0.0;
    for (const auto &prof : profilers_) {
        diag.totalRefs += prof.totalRefs();
        diag.sampledRefs += prof.sampledRefs();
        diag.sampledLines += prof.trackedLines();
        diag.profilerBytes += prof.memoryBytes();
        weighted_rate += prof.effectiveRate() *
                         static_cast<double>(prof.totalRefs());
    }
    diag.effectiveRate =
        diag.totalRefs > 0
            ? weighted_rate / static_cast<double>(diag.totalRefs)
            : (config_.sampling.mode == approx::SamplingMode::FixedRate
                   ? config_.sampling.rate
                   : 1.0);
    return diag;
}

std::uint64_t
Multiprocessor::maxFootprintBytes() const
{
    std::uint64_t m = 0;
    for (std::uint32_t p = 0; p < config_.numProcs; ++p)
        m = std::max(m, footprintBytes(p));
    return m;
}

memsys::HierarchyStats
Multiprocessor::hierarchyStats() const
{
    memsys::HierarchyStats agg;
    for (const memsys::TwoLevelCache *node : nodeCaches_) {
        agg.accesses += node->stats().accesses;
        agg.l1Misses += node->stats().l1Misses;
        agg.l2Misses += node->stats().l2Misses;
    }
    return agg;
}

double
Multiprocessor::concreteReadMissRate() const
{
    ProcStats agg = aggregateStats();
    if (agg.reads == 0)
        return 0.0;
    return static_cast<double>(agg.concreteReadMisses) /
           static_cast<double>(agg.reads);
}

std::vector<std::uint64_t>
sweepSizes(std::uint64_t min_bytes, std::uint64_t max_bytes,
           int points_per_octave, std::uint32_t line_bytes)
{
    std::vector<std::uint64_t> sizes;
    if (min_bytes < line_bytes)
        min_bytes = line_bytes;
    double factor = std::exp2(1.0 / points_per_octave);
    double x = static_cast<double>(min_bytes);
    while (x <= static_cast<double>(max_bytes) * 1.0001) {
        auto bytes = static_cast<std::uint64_t>(std::llround(x));
        bytes = (bytes / line_bytes) * line_bytes;
        if (bytes >= line_bytes &&
            (sizes.empty() || bytes > sizes.back())) {
            sizes.push_back(bytes);
        }
        x *= factor;
    }
    if (sizes.empty() || sizes.back() < max_bytes)
        sizes.push_back((max_bytes / line_bytes) * line_bytes);
    return sizes;
}

} // namespace wsg::sim
