/**
 * @file
 * Trace-driven multiprocessor memory-system simulator.
 *
 * This is the paper's experimental apparatus (Section 2.2): "we simulate a
 * cache-coherent, shared-address-space multiprocessor architecture, with
 * each processor having a single level of cache and an equal fraction of
 * the total main memory".
 *
 * Every processor owns a StackDistanceProfiler, so one application run
 * produces the exact fully-associative-LRU miss-rate curve over *all*
 * cache sizes. A write-invalidate directory sits across the processors:
 * a write by processor p removes the line from every other processor's
 * stack, so the next access by a previous sharer is a Coherence miss — a
 * miss at every cache size, i.e.\ the paper's inherent-communication floor.
 *
 * Warm-up control (setMeasuring) implements the paper's cold-start
 * exclusion: references always update cache and directory state, but only
 * measured references contribute to the statistics.
 *
 * Optionally a concrete cache (set-associative / direct-mapped) can be
 * attached per processor to study associativity effects (Section 6.4).
 *
 * Miss classification (Dubois-style): the directory tracks, per line, a
 * bitmap of the 8-byte *words* ever written plus, per invalidated
 * processor, the words written by others since its invalidation. A
 * coherence miss whose accessed words intersect that remotely-written
 * set is *true sharing* (the processor consumes a value another
 * processor produced); otherwise it is *false sharing* — an artifact of
 * the line granularity that vanishes at 8-byte lines. Together with the
 * cold / capacity split from the stack-distance profiles this yields
 * the four-way breakdown cold + capacity + true + false == total
 * misses at every cache size (readMissClassCurves). When a
 * SharedAddressSpace is attached (attachAddressSpace), every measured
 * reference is additionally attributed to the named application array
 * it touched (arraySummaries).
 *
 * Sampling mode (SimConfig::sampling): each profiler becomes a
 * SHARDS-style spatially-sampled instrument (src/approx) that tracks
 * only the lines whose address hash falls under the admission
 * threshold. The directory stays exact — every write still looks up
 * the full sharer set — but invalidations are delivered through the
 * same admission filter, so sampled lines experience precisely the
 * coherence they would see unsampled while unsampled lines never gain
 * stack state. Curves are then *estimates*: sampled miss counts scaled
 * by the effective rate (approx::ApproxCurve), accurate to a few
 * percent at rates around 1% and byte-deterministic at any worker
 * count because admission depends only on line addresses.
 */

#ifndef WSG_SIM_MULTIPROCESSOR_HH
#define WSG_SIM_MULTIPROCESSOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "approx/approx_curve.hh"
#include "approx/sampled_stack_distance.hh"
#include "approx/sampling.hh"
#include "memsys/cache.hh"
#include "memsys/hierarchy.hh"
#include "memsys/profiler.hh"
#include "memsys/stack_distance.hh"
#include "sim/coherence.hh"
#include "stats/curve.hh"
#include "stats/histogram.hh"
#include "trace/address_space.hh"
#include "trace/memref.hh"

namespace wsg::sim
{

using trace::Addr;
using trace::MemRef;
using trace::ProcId;

/** Machine configuration for a simulation run. */
struct SimConfig
{
    /** Number of processors; at most 64 (a directory entry is a u64). */
    std::uint32_t numProcs = 1;
    /** Cache line size in bytes (power of two). The paper's FLOP-based
     *  metrics count double-word misses, so 8 is the default. */
    std::uint32_t lineBytes = 8;
    CoherenceProtocol protocol = CoherenceProtocol::WriteInvalidate;
    /** Profiler sampling policy; default is exact profiling. */
    approx::SamplingConfig sampling{};
    /**
     * Which miss-rate-curve construction each processor runs. The two
     * Mattson kinds produce bit-identical curves (tree is the faster
     * default); Aet trades exactness of the finite-distance part for
     * O(1) per-reference cost and does not compose with sampling.
     */
    memsys::ProfilerKind profiler = memsys::ProfilerKind::TreeMattson;
    /**
     * Per-node concrete cache hierarchy. The profiler-based curves are
     * unaffected (they sweep all sizes by construction); a two-level
     * spec attaches one TwoLevelCache per processor, so the concrete
     * miss counters and hierarchyStats() describe that machine point.
     */
    memsys::NodeHierarchySpec hierarchy{};
};

/** Per-processor statistics gathered while measuring. */
struct ProcStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** References the sampling filter admitted (== reads/writes when
     *  profiling exactly). Cold/coherence counters and the distance
     *  histograms only ever describe admitted references. */
    std::uint64_t sampledReads = 0;
    std::uint64_t sampledWrites = 0;
    std::uint64_t readCold = 0;
    std::uint64_t readCoherence = 0;
    std::uint64_t writeCold = 0;
    std::uint64_t writeCoherence = 0;
    /**
     * Dubois split of the coherence counters: every admitted coherence
     * miss is exactly one of true sharing (the accessed words intersect
     * the words other processors wrote since this processor lost the
     * line) or false sharing (they do not — a line-granularity
     * artifact), so readTrueSharing + readFalseSharing == readCoherence
     * and likewise for writes. With 8-byte lines a line is one word and
     * the false-sharing counters are structurally zero.
     */
    std::uint64_t readTrueSharing = 0;
    std::uint64_t readFalseSharing = 0;
    std::uint64_t writeTrueSharing = 0;
    std::uint64_t writeFalseSharing = 0;
    /** Stack distances of Finite read / write references. */
    stats::Histogram readDistances;
    stats::Histogram writeDistances;
    /** Concrete-cache results (valid when a cache is attached). */
    std::uint64_t concreteReadMisses = 0;
    std::uint64_t concreteWriteMisses = 0;
    /** Update messages sent by this processor's writes (WriteUpdate
     *  protocol only): one per other sharer per shared-line write. */
    std::uint64_t updatesSent = 0;
    /** Copies this processor's accesses purged from other processors
     *  (invalidating protocols): one per victim per invalidation. */
    std::uint64_t invalidationsSent = 0;
    /** Ownership-upgrade messages (write while Shared). MESI's silent
     *  Exclusive->Modified transition is the only protocol difference
     *  visible in a profiling simulator, so this counter is what
     *  separates MESI from MSI. */
    std::uint64_t upgradesSent = 0;

    /**
     * Read misses in a fully associative LRU cache of @p capacity_lines.
     * Under sampling this is the *raw sampled* miss count; the curve
     * methods scale it to a full-trace estimate (approx::ApproxCurve).
     * @param include_cold Count cold misses too (off for the paper's
     *        warm-start methodology).
     */
    std::uint64_t readMissesAt(std::uint64_t capacity_lines,
                               bool include_cold = false) const;

    /** Write misses under the same model. */
    std::uint64_t writeMissesAt(std::uint64_t capacity_lines,
                                bool include_cold = false) const;
};

/** How to build miss-rate curves out of a finished simulation. */
struct CurveSpec
{
    /** Cache sizes (bytes) to evaluate; must be multiples of lineBytes. */
    std::vector<std::uint64_t> cacheSizesBytes;
    /** Include cold misses in the miss counts. */
    bool includeCold = false;
    /**
     * Optional parallel-for hook for point evaluation, called as
     * parallelFor(n, body) with body(i) evaluating the i-th cache size.
     * Null means serial evaluation. Each point is a pure function of the
     * (immutable) per-processor histograms and its own cache size, and
     * points are assembled into the curve in index order afterwards, so
     * the resulting curve is bit-identical to a serial evaluation —
     * this is the determinism guarantee the study runner relies on.
     * core::ThreadPool::parallelFor matches this signature.
     */
    std::function<void(std::size_t,
                       const std::function<void(std::size_t)> &)>
        parallelFor;
    /**
     * Sampling policy the statistics were collected under. Must match
     * the simulator's SimConfig::sampling mode (checked: a mismatch
     * throws std::invalid_argument, because scaling sampled counts as
     * exact — or vice versa — silently corrupts the curve).
     * analyzeWorkingSets wires this automatically.
     */
    approx::SamplingConfig sampling{};
};

/**
 * Estimated read-miss counts by category at one cache size. Exact runs
 * carry integer-valued doubles; sampled runs carry 1/rate-scaled
 * estimates. The invariant total() == cold + capacity + trueSharing +
 * falseSharing holds by construction, and in exact mode total() equals
 * ProcStats::readMissesAt(lines, include_cold = true) exactly.
 */
struct MissClassPoint
{
    double cold = 0.0;
    /** Finite-distance misses at this size (the only size-dependent
     *  category; the others are inherent to the reference stream). */
    double capacity = 0.0;
    double trueSharing = 0.0;
    double falseSharing = 0.0;

    double
    total() const
    {
        return cold + capacity + trueSharing + falseSharing;
    }
    /** Inherent communication (the paper's miss-rate floor). */
    double sharing() const { return trueSharing + falseSharing; }
};

/** Per-category read-miss curves over a cache-size sweep. */
struct MissClassCurves
{
    std::vector<std::uint64_t> cacheSizesBytes;
    /** One point per swept size, in cacheSizesBytes order. */
    std::vector<MissClassPoint> points;

    bool empty() const { return points.empty(); }
};

/**
 * Size-independent miss attribution for one processor or one named
 * application array: reference counts plus the cold and sharing
 * classifications (capacity misses depend on the cache size and live in
 * MissClassCurves instead). Raw admitted counts — under sampling, scale
 * by 1/effective-rate to estimate full-trace magnitudes.
 */
struct SharingSummary
{
    /** Array segment name, or "p<i>" for processor summaries. */
    std::string name;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readCold = 0;
    std::uint64_t writeCold = 0;
    std::uint64_t readTrueSharing = 0;
    std::uint64_t readFalseSharing = 0;
    std::uint64_t writeTrueSharing = 0;
    std::uint64_t writeFalseSharing = 0;

    std::uint64_t
    sharingMisses() const
    {
        return readTrueSharing + readFalseSharing + writeTrueSharing +
               writeFalseSharing;
    }
};

/**
 * The multiprocessor. Feed it MemRefs (it is a MemorySink); query curves
 * and stats when the application finishes.
 */
class Multiprocessor : public trace::MemorySink
{
  public:
    explicit Multiprocessor(const SimConfig &config);

    /** MemorySink interface: split into lines, run coherence, profile. */
    void access(const MemRef &ref) override;

    /** Batched delivery: identical to n access() calls, minus the
     *  virtual dispatch per reference. */
    void accessBatch(const MemRef *refs, std::size_t n) override;

    /** Warm-up control: when false, references update state only. */
    void setMeasuring(bool measuring) { measuring_ = measuring; }
    bool measuring() const { return measuring_; }

    /**
     * Attach one concrete cache per processor. The factory is called once
     * per processor. Concrete caches see the same line stream and the same
     * invalidations as the profilers.
     */
    void attachCaches(
        const std::function<std::unique_ptr<memsys::Cache>()> &factory);

    /**
     * Attach the application's address space so measured references are
     * attributed to the named array segments (arraySummaries). The
     * space must outlive the simulator; segments allocated after the
     * attach are picked up automatically (attribution resolves lazily
     * against the live segment table). Attribution never perturbs the
     * profilers or the directory, so curves and aggregate counters are
     * byte-identical with or without an attached space.
     */
    void
    attachAddressSpace(const trace::SharedAddressSpace *space)
    {
        space_ = space;
    }

    const SimConfig &config() const { return config_; }
    const ProcStats &procStats(ProcId pid) const { return stats_[pid]; }

    /** Sum of per-processor counters/histograms. */
    ProcStats aggregateStats() const;

    /**
     * Aggregate read-miss-rate curve: x = cache size in bytes, y = read
     * misses / read references across all processors.
     */
    stats::Curve readMissRateCurve(const CurveSpec &spec,
                                   const std::string &name) const;

    /**
     * Per-processor read-miss-rate curve — the paper's working sets are
     * *per-processor*; comparing these across PEs shows whether the
     * partition gives every processor the same locality.
     */
    stats::Curve procReadMissRateCurve(ProcId pid, const CurveSpec &spec,
                                       const std::string &name) const;

    /**
     * Aggregate misses-per-FLOP curve: x = cache size in bytes, y =
     * double-word read misses / @p total_flops. Line sizes larger than a
     * double word scale the miss count by lineBytes/8 so the metric stays
     * "double-word misses" as in the paper.
     */
    stats::Curve missesPerFlopCurve(const CurveSpec &spec,
                                    std::uint64_t total_flops,
                                    const std::string &name) const;

    /**
     * Aggregate memory-traffic curve: bytes moved between cache and the
     * rest of the system per FLOP, versus cache size. A read miss moves
     * one line in; a write miss moves a line in (write-allocate) and —
     * since written lines are eventually evicted dirty — one line back
     * out, so traffic = (readMisses + 2 * writeMisses) * lineBytes.
     * This is the bandwidth demand the grain-size discussion (Section
     * 2.3) weighs against the machine's sustainable rates.
     */
    stats::Curve trafficPerFlopCurve(const CurveSpec &spec,
                                     std::uint64_t total_flops,
                                     const std::string &name) const;

    /**
     * Per-category read-miss curves (cold / capacity / true-sharing /
     * false-sharing) over the spec's cache sizes. Under sampling every
     * category is the admitted count scaled by 1/rate (the same
     * SHARDS_adj estimator the rate curves use), so the four categories
     * still sum to the estimated total at every size; in exact mode the
     * sums are integer-exact. Evaluation is serial — the points share
     * one aggregation pass — and depends only on the per-processor
     * histograms, so results are byte-identical at any worker count.
     */
    MissClassCurves readMissClassCurves(const CurveSpec &spec) const;

    /**
     * Convenience single point of readMissClassCurves at
     * @p capacity_lines.
     */
    MissClassPoint readMissClassesAt(std::uint64_t capacity_lines) const;

    /** Per-processor attribution summaries ("p0".."pN-1"). */
    std::vector<SharingSummary> procSummaries() const;

    /**
     * Per-array attribution summaries, one per segment of the attached
     * address space (in allocation order; zero-filled for arrays whose
     * references all fell outside measurement), plus a trailing
     * "(unmapped)" bucket when measured references hit addresses no
     * segment covers. Empty when no space is attached.
     */
    std::vector<SharingSummary> arraySummaries() const;

    /** Per-processor footprint in bytes (distinct lines touched; under
     *  sampling an estimate scaled by the effective rate). */
    std::uint64_t footprintBytes(ProcId pid) const;

    /** Largest per-processor footprint — upper end for size sweeps. */
    std::uint64_t maxFootprintBytes() const;

    /** Concrete-cache aggregate read miss rate (caches attached). */
    double concreteReadMissRate() const;

    /**
     * Per-level hit/miss counters summed over the node caches built
     * from SimConfig::hierarchy (zero-valued for single-level runs or
     * externally attached caches).
     */
    memsys::HierarchyStats hierarchyStats() const;

    /**
     * Sampling observability across all profilers: effective rate,
     * admitted/total references, tracked lines, and profiler memory.
     * Meaningful in exact mode too (rate 1, sampled == total) — the
     * profilerBytes field is how the exact-vs-sampled memory saving is
     * measured and reported.
     */
    approx::SamplingDiagnostics samplingDiagnostics() const;

  private:
    /**
     * @param words Bitmap of the 8-byte words this access touches
     *        within the line (bit w = word w; lines wider than 512 B
     *        clamp to 64 words).
     * @param byte_addr First simulated byte this access touches within
     *        the line — the address the array attribution resolves.
     */
    void accessLine(ProcId pid, Addr line, bool is_write,
                    std::uint64_t words, Addr byte_addr);
    /** Throw unless @p spec's sampling mode matches the simulator's. */
    void checkSpecSampling(const CurveSpec &spec) const;
    /**
     * AET-construction miss counts at @p capacity_lines. The Mattson
     * kinds read misses off the *merged* distance histogram (threshold
     * == capacity for every processor), but AET's capacity-to-threshold
     * transform is per-processor — each profiler models its own
     * reference stream — so the sum must be taken per processor before
     * scaling. Pure functions of immutable state, safe to evaluate from
     * parallel curve points.
     */
    std::uint64_t aetReadMisses(std::uint64_t capacity_lines,
                                bool include_cold) const;
    std::uint64_t aetWriteMisses(std::uint64_t capacity_lines,
                                 bool include_cold) const;
    /** Estimator denominators (see approx::SampledCounts). */
    double expectedSampledReads() const;
    double expectedSampledWrites() const;
    /** Aggregate SampledCounts for the read / write stream. */
    approx::SampledCounts readCounts(const ProcStats &agg) const;
    approx::SampledCounts writeCounts(const ProcStats &agg) const;
    /** Per-array counter slot for @p byte_addr, or nullptr when no
     *  space is attached. Grows the slot table lazily so segments
     *  allocated after attachAddressSpace are covered. */
    SharingSummary *arraySlot(Addr byte_addr);

    SimConfig config_;
    bool measuring_ = true;
    /** Protocol state machine (shared, stateless; never null). */
    const CoherencePolicy *policy_;
    std::vector<approx::SampledStackDistanceProfiler> profilers_;
    std::vector<ProcStats> stats_;
    std::vector<std::unique_ptr<memsys::Cache>> caches_;
    /** Non-owning views of caches_ when they are TwoLevelCaches built
     *  from config_.hierarchy, for hierarchyStats(). */
    std::vector<const memsys::TwoLevelCache *> nodeCaches_;

    /** Directory entry per line. */
    struct DirEntry
    {
        /** Protocol state (sharer mask + exclusive holder), owned by
         *  the CoherencePolicy's transitions. */
        LineState state;
        /** Bitmask of processors invalidated off the line and not yet
         *  returned; each has a live pending_ word-mask entry. Always
         *  disjoint from state.sharers. */
        std::uint64_t pendingProcs = 0;
        /** Bitmap of the words ever written (any processor) — the
         *  producer set a first-touch coherence miss is split against. */
        std::uint64_t writtenWords = 0;
        /** Last writer + 1; 0 = never written through the simulator. */
        std::uint32_t writerPlusOne = 0;
    };
    std::unordered_map<Addr, DirEntry> directory_;
    /**
     * Words written (by anyone else) to a line since a given processor
     * was invalidated off it, keyed by line * 64 + pid; created by the
     * invalidation, accumulated by subsequent writes, and claimed —
     * erased — by that processor's next access, where a non-empty
     * intersection with the accessed words makes the coherence miss
     * true sharing. Bounded by lines * procs but in practice tiny:
     * entries only exist for lines in the invalidated-but-not-yet-
     * reread state.
     */
    std::unordered_map<std::uint64_t, std::uint64_t> pendingWords_;

    /** Attribution state (attachAddressSpace). */
    const trace::SharedAddressSpace *space_ = nullptr;
    /** One slot per segment, indexed like space_->segments(); names are
     *  filled in lazily by arraySummaries(). */
    std::vector<SharingSummary> arrayStats_;
    /** Measured references outside every segment. */
    SharingSummary unmappedStats_;
};

/**
 * Generate a log-spaced cache-size sweep: @p points_per_octave sizes per
 * doubling from @p min_bytes to @p max_bytes inclusive, all rounded to
 * multiples of @p line_bytes.
 */
std::vector<std::uint64_t> sweepSizes(std::uint64_t min_bytes,
                                      std::uint64_t max_bytes,
                                      int points_per_octave = 4,
                                      std::uint32_t line_bytes = 8);

} // namespace wsg::sim

#endif // WSG_SIM_MULTIPROCESSOR_HH
