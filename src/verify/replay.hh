/**
 * @file
 * Counterexample serialization and the simulator litmus test.
 *
 * A model-checker verdict is only as good as the model's fidelity to
 * the machine it abstracts. Every counterexample trace is therefore
 * replayable through the *real* apparatus: the accesses are fed to a
 * sim::Multiprocessor (one 8-byte line, the shipped policy for the
 * protocol under test) while the same trace is run through the model
 * with that shipped policy, and the two message ledgers —
 * invalidations, updates, upgrades — must agree exactly. A mutant's
 * counterexample that replays consistently under the shipped policy
 * shows both halves of the argument: the trace is executable on the
 * real simulator, and the shipped protocol does not exhibit the
 * mutant's defect on it.
 *
 * Traces travel as "wsg-modelcheck-trace-v1" JSON documents:
 *
 *   {"schema": "wsg-modelcheck-trace-v1", "policy": "...",
 *    "protocol": "msi", "procs": 4, "invariant": "...",
 *    "detail": "...", "trace": [{"pid": 0, "op": "write"}, ...]}
 *
 * Emission goes through stats::JsonWriter (ordered keys, fixed
 * indentation), so documents are byte-deterministic.
 */

#ifndef WSG_VERIFY_REPLAY_HH
#define WSG_VERIFY_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/coherence.hh"
#include "verify/checker.hh"
#include "verify/model.hh"

namespace wsg::verify
{

/** Model-versus-simulator message ledger comparison. */
struct ReplayResult
{
    /** True when every counter pair agrees. */
    bool consistent = false;
    std::uint64_t modelInvalidations = 0;
    std::uint64_t simInvalidations = 0;
    std::uint64_t modelUpdates = 0;
    std::uint64_t simUpdates = 0;
    std::uint64_t modelUpgrades = 0;
    std::uint64_t simUpgrades = 0;
    /** Empty when consistent, else the first disagreement. */
    std::string detail;
};

/**
 * Replay @p trace through both the model and a sim::Multiprocessor
 * under the shipped policy for @p protocol, and compare the message
 * ledgers. @p procs must cover every pid in the trace (and stay
 * within the simulator's [1, 64]).
 */
ReplayResult replayTrace(sim::CoherenceProtocol protocol,
                         std::uint32_t procs,
                         const std::vector<Access> &trace);

/** A parsed wsg-modelcheck-trace-v1 document. */
struct ParsedTrace
{
    /** The "policy" label, e.g. "msi" or "mutant:msi-forget-reader". */
    std::string policy;
    sim::CoherenceProtocol protocol =
        sim::CoherenceProtocol::WriteInvalidate;
    std::uint32_t procs = 0;
    std::string invariant;
    std::vector<Access> trace;
};

/**
 * Serialize one counterexample. @p policy_label names the checked
 * policy ("msi", "mutant:..."); @p protocol is the shipped protocol
 * the replay litmus runs.
 */
std::string counterexampleToJson(const std::string &policy_label,
                                 sim::CoherenceProtocol protocol,
                                 std::uint32_t procs,
                                 const Violation &violation);

/**
 * Parse a wsg-modelcheck-trace-v1 document.
 * @throws std::invalid_argument on a wrong schema, an unknown
 *         protocol, out-of-range pids, or malformed JSON.
 */
ParsedTrace parseCounterexample(const std::string &text);

} // namespace wsg::verify

#endif // WSG_VERIFY_REPLAY_HH
