#include "verify/model.hh"

#include <bit>

namespace wsg::verify
{

const char *
invariantName(InvariantId id)
{
    switch (id) {
      case InvariantId::StateBounds: return "state-bounds";
      case InvariantId::NoSelfInvalidation:
        return "no-self-invalidation";
      case InvariantId::InvalidateSubset: return "invalidate-subset";
      case InvariantId::HolderInSharers: return "holder-in-sharers";
      case InvariantId::SingleWriter: return "single-writer";
      case InvariantId::UpdateCoverage: return "update-coverage";
      case InvariantId::DirectoryPrecision:
        return "directory-precision";
      case InvariantId::ValueFreshness: break;
    }
    return "value-freshness";
}

Step
applyStep(const sim::CoherencePolicy &policy, const ModelState &state,
          Access access, std::uint32_t procs)
{
    Step step;
    step.next = state;
    step.actions =
        policy.onAccess(step.next.line, access.pid, access.isWrite);

    // Shadow-copy semantics. Victims lose their copies first — the
    // machine delivers invalidations before the new value is produced.
    std::uint64_t victims = step.actions.invalidateMask;
    while (victims) {
        unsigned v = static_cast<unsigned>(std::countr_zero(victims));
        victims &= victims - 1;
        if (v < kMaxModelProcs)
            step.next.copies[v] = CopyState::None;
    }
    std::uint64_t self = std::uint64_t{1} << access.pid;
    if (access.isWrite) {
        // The write makes a new version: the writer is fresh, every
        // surviving remote copy is superseded unless the protocol sent
        // enough updates to cover all remaining remote sharers (the
        // write-update contract; update-coverage checks the count).
        std::uint64_t remaining = step.next.line.sharers & ~self;
        bool covered =
            step.actions.updates >=
            static_cast<std::uint32_t>(std::popcount(remaining));
        for (std::uint32_t q = 0; q < procs; ++q) {
            if (q == access.pid ||
                step.next.copies[q] == CopyState::None) {
                continue;
            }
            bool updated =
                covered && (remaining & (std::uint64_t{1} << q)) != 0;
            step.next.copies[q] =
                updated ? CopyState::Fresh : CopyState::Stale;
        }
        step.next.copies[access.pid] = CopyState::Fresh;
    } else {
        // A read fetches the current value only when the processor
        // holds nothing; a cached copy — stale or not — is consumed
        // as-is. Staleness therefore survives reads, which is what
        // makes value-freshness a real safety property.
        if (step.next.copies[access.pid] == CopyState::None)
            step.next.copies[access.pid] = CopyState::Fresh;
    }
    return step;
}

bool
checkInvariants(const ModelState &pre, Access access, const Step &step,
                std::uint32_t procs, std::vector<InvariantId> &out)
{
    std::size_t before = out.size();
    std::uint64_t self = std::uint64_t{1} << access.pid;
    std::uint64_t machine =
        procs >= 64 ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << procs) - 1);
    const sim::LineState &post = step.next.line;

    if ((post.sharers & ~machine) != 0 ||
        (step.actions.invalidateMask & ~machine) != 0 ||
        post.exclusivePlusOne > procs) {
        out.push_back(InvariantId::StateBounds);
    }
    if ((step.actions.invalidateMask & self) != 0)
        out.push_back(InvariantId::NoSelfInvalidation);
    if ((step.actions.invalidateMask & ~pre.line.sharers) != 0)
        out.push_back(InvariantId::InvalidateSubset);
    if (post.exclusivePlusOne != 0) {
        std::uint64_t holder = std::uint64_t{1}
                               << (post.exclusivePlusOne - 1);
        if ((post.sharers & holder) == 0)
            out.push_back(InvariantId::HolderInSharers);
        if (std::popcount(post.sharers) > 1)
            out.push_back(InvariantId::SingleWriter);
    }
    if (access.isWrite) {
        std::uint64_t remaining = post.sharers & ~self;
        if (step.actions.updates <
            static_cast<std::uint32_t>(std::popcount(remaining))) {
            out.push_back(InvariantId::UpdateCoverage);
        }
    }
    for (std::uint32_t q = 0; q < procs; ++q) {
        bool sharer = (post.sharers & (std::uint64_t{1} << q)) != 0;
        bool copy = step.next.copies[q] != CopyState::None;
        if (sharer != copy) {
            out.push_back(InvariantId::DirectoryPrecision);
            break;
        }
    }
    for (std::uint32_t q = 0; q < procs; ++q) {
        bool sharer = (post.sharers & (std::uint64_t{1} << q)) != 0;
        if (sharer && step.next.copies[q] == CopyState::Stale) {
            out.push_back(InvariantId::ValueFreshness);
            break;
        }
    }
    return out.size() == before;
}

std::uint64_t
encodeState(const ModelState &state, std::uint32_t procs)
{
    // sharers (6 bits) | exclusivePlusOne (3 bits) | copies (2 bits
    // per processor) — 21 bits total at kMaxModelProcs.
    std::uint64_t key = state.line.sharers & 0x3f;
    key |= static_cast<std::uint64_t>(state.line.exclusivePlusOne & 0x7)
           << 6;
    for (std::uint32_t q = 0; q < procs; ++q) {
        key |= static_cast<std::uint64_t>(state.copies[q])
               << (9 + 2 * q);
    }
    return key;
}

std::string
describeState(const ModelState &state, std::uint32_t procs)
{
    std::string sharers;
    for (std::uint32_t q = 0; q < procs; ++q) {
        if ((state.line.sharers & (std::uint64_t{1} << q)) != 0) {
            if (!sharers.empty())
                sharers += ',';
            sharers += std::to_string(q);
        }
    }
    std::string out = "sharers={" + sharers + "} excl=";
    out += state.line.exclusivePlusOne == 0
               ? "-"
               : std::to_string(state.line.exclusivePlusOne - 1);
    out += " copies=";
    for (std::uint32_t q = 0; q < procs; ++q) {
        switch (state.copies[q]) {
          case CopyState::None: out += '.'; break;
          case CopyState::Fresh: out += 'F'; break;
          case CopyState::Stale: out += 'S'; break;
        }
    }
    return out;
}

std::string
describeAccess(Access access)
{
    std::string out(1, access.isWrite ? 'w' : 'r');
    out += std::to_string(access.pid);
    return out;
}

ModelState
permuteState(const ModelState &state,
             const std::array<std::uint8_t, kMaxModelProcs> &perm,
             std::uint32_t procs)
{
    ModelState out;
    for (std::uint32_t q = 0; q < procs; ++q) {
        if ((state.line.sharers & (std::uint64_t{1} << q)) != 0)
            out.line.sharers |= std::uint64_t{1} << perm[q];
        out.copies[perm[q]] = state.copies[q];
    }
    if (state.line.exclusivePlusOne != 0) {
        out.line.exclusivePlusOne =
            perm[state.line.exclusivePlusOne - 1] + 1u;
    }
    return out;
}

} // namespace wsg::verify
