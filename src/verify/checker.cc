#include "verify/checker.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wsg::verify
{

void
CheckConfig::validate() const
{
    if (procs == 0 || procs > kMaxModelProcs) {
        throw std::invalid_argument(
            "CheckConfig: procs must be in [1, " +
            std::to_string(kMaxModelProcs) +
            "] (the small-scope model bound; the simulator itself "
            "goes to 64)");
    }
    if (depth > 64) {
        throw std::invalid_argument(
            "CheckConfig: depth must be <= 64 (use depth 0 for the "
            "unbounded fixed-point mode)");
    }
}

namespace
{

/** Visited-set entry: BFS tree edge back towards the initial state. */
struct Node
{
    std::uint64_t parent = 0;
    Access via{};
    std::uint32_t depth = 0;
};

using VisitedMap = std::unordered_map<std::uint64_t, Node>;

/** Path root -> @p key, plus the violating access @p last. */
std::vector<Access>
rebuildTrace(const VisitedMap &visited, std::uint64_t key, Access last)
{
    std::vector<Access> trace;
    for (;;) {
        const Node &node = visited.at(key);
        if (node.depth == 0)
            break;
        trace.push_back(node.via);
        key = node.parent;
    }
    std::reverse(trace.begin(), trace.end());
    trace.push_back(last);
    return trace;
}

std::string
describeActions(const sim::CoherenceActions &actions)
{
    std::string out = "invalidate=0x";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(
                      actions.invalidateMask));
    out += buf;
    out += " updates=" + std::to_string(actions.updates);
    out += actions.upgrade ? " upgrade" : "";
    return out;
}

/** All permutations of [0, procs), padded with the identity above. */
std::vector<std::array<std::uint8_t, kMaxModelProcs>>
makePermutations(std::uint32_t procs)
{
    std::array<std::uint8_t, kMaxModelProcs> perm{};
    for (std::uint32_t i = 0; i < kMaxModelProcs; ++i)
        perm[i] = static_cast<std::uint8_t>(i);
    std::vector<std::array<std::uint8_t, kMaxModelProcs>> perms;
    do {
        perms.push_back(perm);
    } while (std::next_permutation(perm.begin(),
                                   perm.begin() + procs));
    return perms;
}

/** Minimum encoding over all processor permutations; @p canon receives
 *  the representative state realizing it. */
std::uint64_t
canonicalKey(
    const ModelState &state, std::uint32_t procs,
    const std::vector<std::array<std::uint8_t, kMaxModelProcs>> &perms,
    ModelState &canon)
{
    std::uint64_t best = encodeState(state, procs);
    canon = state;
    for (const auto &perm : perms) {
        ModelState permuted = permuteState(state, perm, procs);
        std::uint64_t key = encodeState(permuted, procs);
        if (key < best) {
            best = key;
            canon = permuted;
        }
    }
    return best;
}

} // namespace

CheckResult
checkPolicy(const sim::CoherencePolicy &policy,
            const CheckConfig &config)
{
    config.validate();
    CheckResult result;
    std::vector<std::array<std::uint8_t, kMaxModelProcs>> perms;
    if (config.symmetry)
        perms = makePermutations(config.procs);

    ModelState init{};
    std::uint64_t init_key = encodeState(init, config.procs);
    VisitedMap visited;
    visited[init_key] = Node{init_key, Access{}, 0};
    std::deque<std::pair<ModelState, std::uint64_t>> frontier;
    frontier.emplace_back(init, init_key);

    bool stopped_early = false;
    while (!frontier.empty()) {
        auto [state, key] = frontier.front();
        frontier.pop_front();
        std::uint32_t depth = visited.at(key).depth;
        if (config.depth != 0 && depth >= config.depth)
            continue;
        for (std::uint32_t pid = 0; pid < config.procs; ++pid) {
            for (bool is_write : {false, true}) {
                if (stopped_early)
                    break;
                Access access{pid, is_write};
                Step step =
                    applyStep(policy, state, access, config.procs);
                ++result.transitionsChecked;
                std::vector<InvariantId> bad;
                if (!checkInvariants(state, access, step, config.procs,
                                     bad)) {
                    Violation violation;
                    violation.invariant = invariantName(bad.front());
                    violation.detail =
                        std::string(invariantName(bad.front())) +
                        " broken by " + describeAccess(access) +
                        " on " + describeState(state, config.procs) +
                        " -> " +
                        describeState(step.next, config.procs) + " (" +
                        describeActions(step.actions) + ")";
                    violation.trace =
                        rebuildTrace(visited, key, access);
                    violation.actions = step.actions;
                    result.violations.push_back(std::move(violation));
                    if (result.violations.size() >=
                        config.maxViolations) {
                        stopped_early = true;
                    }
                    // A broken successor state is not expanded: every
                    // path through it would only cascade the same
                    // defect into longer, less useful traces.
                    continue;
                }
                ModelState next = step.next;
                std::uint64_t next_key;
                if (config.symmetry) {
                    ModelState canon;
                    next_key = canonicalKey(next, config.procs, perms,
                                            canon);
                    next = canon;
                } else {
                    next_key = encodeState(next, config.procs);
                }
                if (visited.emplace(next_key,
                                    Node{key, access, depth + 1})
                        .second) {
                    result.maxDepthReached =
                        std::max(result.maxDepthReached, depth + 1);
                    frontier.emplace_back(next, next_key);
                }
            }
            if (stopped_early)
                break;
        }
        if (stopped_early)
            break;
    }
    result.statesExplored = visited.size();
    // Closure proof: with no early stop, either we ran unbounded to
    // the empty frontier, or the bounded run never even generated a
    // state at the bound — the reachable space was closed within it.
    result.exhausted =
        !stopped_early &&
        (config.depth == 0 || result.maxDepthReached < config.depth);

    // Symmetric counterexample traces live in per-step permuted
    // frames, and mutant policies need not be processor-anonymous, so
    // a violating symmetric run re-derives its witness with a plain
    // exhaustive run — same bounds, concrete (replayable) trace.
    if (config.symmetry && !result.clean()) {
        CheckConfig plain = config;
        plain.symmetry = false;
        return checkPolicy(policy, plain);
    }
    return result;
}

const char *
relationName(RelationKind kind)
{
    switch (kind) {
      case RelationKind::StateEqual: return "state-equal";
      case RelationKind::MesiRefinesMsi: return "mesi-refines-msi";
      case RelationKind::TombstoneDominance: break;
    }
    return "tombstone-dominance";
}

namespace
{

/** Product state: both policies' line states plus both tombstone
 *  (invalidated-and-pending) masks. */
struct RelState
{
    sim::LineState lhs{};
    sim::LineState rhs{};
    std::uint8_t pendingLhs = 0;
    std::uint8_t pendingRhs = 0;
};

std::uint64_t
encodeRelState(const RelState &state)
{
    std::uint64_t key = state.lhs.sharers & 0x3f;
    key |= static_cast<std::uint64_t>(state.lhs.exclusivePlusOne & 0x7)
           << 6;
    key |= static_cast<std::uint64_t>(state.rhs.sharers & 0x3f) << 9;
    key |= static_cast<std::uint64_t>(state.rhs.exclusivePlusOne & 0x7)
           << 15;
    key |= static_cast<std::uint64_t>(state.pendingLhs) << 18;
    key |= static_cast<std::uint64_t>(state.pendingRhs) << 24;
    return key;
}

std::string
lineString(const sim::LineState &line)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "sharers=0x%llx excl=%d",
                  static_cast<unsigned long long>(line.sharers),
                  static_cast<int>(line.exclusivePlusOne) - 1);
    return buf;
}

/** Divergence check for one lockstep transition; returns the
 *  divergence id ("" = consistent) and fills @p detail. */
std::string
relationDivergence(RelationKind kind, const RelState &pre,
                   const RelState &post, Access access,
                   const sim::CoherenceActions &lhs_actions,
                   const sim::CoherenceActions &rhs_actions,
                   std::string &detail)
{
    switch (kind) {
      case RelationKind::StateEqual:
        if (post.lhs.sharers != post.rhs.sharers ||
            post.lhs.exclusivePlusOne != post.rhs.exclusivePlusOne) {
            detail = "states diverge after " +
                     describeAccess(access) + ": lhs " +
                     lineString(post.lhs) + " vs rhs " +
                     lineString(post.rhs);
            return "state-equal";
        }
        if (lhs_actions.invalidateMask != rhs_actions.invalidateMask ||
            lhs_actions.updates != rhs_actions.updates ||
            lhs_actions.upgrade != rhs_actions.upgrade) {
            detail = "actions diverge on " + describeAccess(access) +
                     ": lhs " + describeActions(lhs_actions) +
                     " vs rhs " + describeActions(rhs_actions);
            return "state-equal";
        }
        return "";
      case RelationKind::MesiRefinesMsi:
        if (post.lhs.sharers != post.rhs.sharers) {
            detail = "sharer sets diverge after " +
                     describeAccess(access) + ": mesi " +
                     lineString(post.lhs) + " vs msi " +
                     lineString(post.rhs);
            return "mesi-sharers";
        }
        if (lhs_actions.invalidateMask != rhs_actions.invalidateMask) {
            detail = "invalidations diverge on " +
                     describeAccess(access) + ": mesi " +
                     describeActions(lhs_actions) + " vs msi " +
                     describeActions(rhs_actions);
            return "mesi-invalidations";
        }
        if (lhs_actions.updates != rhs_actions.updates) {
            detail = "update messages diverge on " +
                     describeAccess(access);
            return "mesi-updates";
        }
        if (lhs_actions.upgrade && !rhs_actions.upgrade) {
            detail = "mesi upgrades where msi does not, on " +
                     describeAccess(access) + " from mesi " +
                     lineString(pre.lhs);
            return "mesi-extra-upgrade";
        }
        if (rhs_actions.upgrade && !lhs_actions.upgrade &&
            pre.lhs.exclusivePlusOne != access.pid + 1) {
            detail = "mesi misses an upgrade on " +
                     describeAccess(access) + " from mesi " +
                     lineString(pre.lhs) +
                     " (writer did not hold the line Exclusive, so "
                     "the silent E->M transition does not apply)";
            return "mesi-missing-upgrade";
        }
        return "";
      case RelationKind::TombstoneDominance:
        if ((post.pendingRhs & ~post.pendingLhs) != 0) {
            char buf[80];
            std::snprintf(buf, sizeof buf,
                          "after %s: mi pending=0x%x msi pending=0x%x",
                          describeAccess(access).c_str(),
                          static_cast<unsigned>(post.pendingLhs),
                          static_cast<unsigned>(post.pendingRhs));
            detail = std::string("mi tombstone set no longer contains "
                                 "msi's ") +
                     buf;
            return "tombstone-dominance";
        }
        return "";
    }
    return "";
}

} // namespace

CheckResult
checkRelation(RelationKind kind, const sim::CoherencePolicy &lhs,
              const sim::CoherencePolicy &rhs,
              const CheckConfig &config)
{
    config.validate();
    CheckResult result;
    RelState init{};
    std::uint64_t init_key = encodeRelState(init);
    VisitedMap visited;
    visited[init_key] = Node{init_key, Access{}, 0};
    std::deque<std::pair<RelState, std::uint64_t>> frontier;
    frontier.emplace_back(init, init_key);

    bool stopped_early = false;
    while (!frontier.empty()) {
        auto [state, key] = frontier.front();
        frontier.pop_front();
        std::uint32_t depth = visited.at(key).depth;
        if (config.depth != 0 && depth >= config.depth)
            continue;
        for (std::uint32_t pid = 0; pid < config.procs; ++pid) {
            for (bool is_write : {false, true}) {
                if (stopped_early)
                    break;
                Access access{pid, is_write};
                RelState next = state;
                sim::CoherenceActions lhs_actions =
                    lhs.onAccess(next.lhs, pid, is_write);
                sim::CoherenceActions rhs_actions =
                    rhs.onAccess(next.rhs, pid, is_write);
                std::uint8_t self =
                    static_cast<std::uint8_t>(1u << pid);
                next.pendingLhs = static_cast<std::uint8_t>(
                    (next.pendingLhs & ~self) |
                    lhs_actions.invalidateMask);
                next.pendingRhs = static_cast<std::uint8_t>(
                    (next.pendingRhs & ~self) |
                    rhs_actions.invalidateMask);
                ++result.transitionsChecked;
                std::string detail;
                std::string divergence = relationDivergence(
                    kind, state, next, access, lhs_actions,
                    rhs_actions, detail);
                if (!divergence.empty()) {
                    Violation violation;
                    violation.invariant = divergence;
                    violation.detail = std::move(detail);
                    violation.trace =
                        rebuildTrace(visited, key, access);
                    violation.actions = lhs_actions;
                    result.violations.push_back(std::move(violation));
                    if (result.violations.size() >=
                        config.maxViolations) {
                        stopped_early = true;
                    }
                    continue;
                }
                std::uint64_t next_key = encodeRelState(next);
                if (visited.emplace(next_key,
                                    Node{key, access, depth + 1})
                        .second) {
                    result.maxDepthReached =
                        std::max(result.maxDepthReached, depth + 1);
                    frontier.emplace_back(next, next_key);
                }
            }
            if (stopped_early)
                break;
        }
        if (stopped_early)
            break;
    }
    result.statesExplored = visited.size();
    result.exhausted =
        !stopped_early &&
        (config.depth == 0 || result.maxDepthReached < config.depth);
    return result;
}

const Violation *
ProtocolCheck::firstViolation() const
{
    if (!invariants.clean())
        return &invariants.violations.front();
    for (const auto &relation : relations) {
        if (!relation.second.clean())
            return &relation.second.violations.front();
    }
    return nullptr;
}

ProtocolCheck
verifyProtocol(sim::CoherenceProtocol protocol,
               const CheckConfig &config)
{
    ProtocolCheck check;
    check.protocol = protocol;
    const sim::CoherencePolicy &policy =
        sim::coherencePolicyFor(protocol);
    check.invariants = checkPolicy(policy, config);
    const sim::CoherencePolicy &msi =
        sim::coherencePolicyFor(sim::CoherenceProtocol::Msi);
    switch (protocol) {
      case sim::CoherenceProtocol::WriteInvalidate:
        check.relations.emplace_back(
            RelationKind::StateEqual,
            checkRelation(RelationKind::StateEqual, policy, msi,
                          config));
        break;
      case sim::CoherenceProtocol::Mesi:
        check.relations.emplace_back(
            RelationKind::MesiRefinesMsi,
            checkRelation(RelationKind::MesiRefinesMsi, policy, msi,
                          config));
        break;
      case sim::CoherenceProtocol::Mi:
        check.relations.emplace_back(
            RelationKind::TombstoneDominance,
            checkRelation(RelationKind::TombstoneDominance, policy,
                          msi, config));
        break;
      case sim::CoherenceProtocol::WriteUpdate:
      case sim::CoherenceProtocol::Msi:
        break;
    }
    return check;
}

const std::vector<sim::CoherenceProtocol> &
shippedProtocols()
{
    static const std::vector<sim::CoherenceProtocol> protocols = {
        sim::CoherenceProtocol::WriteInvalidate,
        sim::CoherenceProtocol::WriteUpdate,
        sim::CoherenceProtocol::Mi,
        sim::CoherenceProtocol::Msi,
        sim::CoherenceProtocol::Mesi,
    };
    return protocols;
}

} // namespace wsg::verify
