#include "verify/replay.hh"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "sim/multiprocessor.hh"
#include "stats/json_parse.hh"
#include "stats/json_report.hh"

namespace wsg::verify
{
namespace
{

constexpr const char *kSchema = "wsg-modelcheck-trace-v1";

std::string
mismatch(const char *counter, std::uint64_t model, std::uint64_t sim)
{
    return std::string(counter) + ": model=" + std::to_string(model) +
           " sim=" + std::to_string(sim);
}

} // namespace

ReplayResult
replayTrace(sim::CoherenceProtocol protocol, std::uint32_t procs,
            const std::vector<Access> &trace)
{
    if (procs == 0 || procs > 64)
        throw std::invalid_argument(
            "replayTrace: procs must be in [1, 64]");
    for (const Access &access : trace) {
        if (access.pid >= procs)
            throw std::invalid_argument(
                "replayTrace: trace pid " + std::to_string(access.pid) +
                " outside a " + std::to_string(procs) +
                "-processor machine");
    }

    // Model side: run the shipped policy over the bare protocol state
    // (the shadow copies play no role in the message ledger).
    const sim::CoherencePolicy &policy = sim::coherencePolicyFor(protocol);
    ReplayResult result;
    sim::LineState line{};
    for (const Access &access : trace) {
        sim::CoherenceActions actions =
            policy.onAccess(line, access.pid, access.isWrite);
        result.modelInvalidations +=
            std::popcount(actions.invalidateMask);
        result.modelUpdates += actions.updates;
        result.modelUpgrades += actions.upgrade ? 1 : 0;
    }

    // Simulator side: one 8-byte line, whole-line accesses.
    sim::SimConfig config;
    config.numProcs = procs;
    config.lineBytes = 8;
    config.protocol = protocol;
    sim::Multiprocessor machine(config);
    for (const Access &access : trace) {
        machine.access(trace::MemRef{0, 8, access.pid,
                                     access.isWrite
                                         ? trace::RefType::Write
                                         : trace::RefType::Read});
    }
    sim::ProcStats aggregate = machine.aggregateStats();
    result.simInvalidations = aggregate.invalidationsSent;
    result.simUpdates = aggregate.updatesSent;
    result.simUpgrades = aggregate.upgradesSent;

    if (result.modelInvalidations != result.simInvalidations)
        result.detail = mismatch("invalidations", result.modelInvalidations,
                                 result.simInvalidations);
    else if (result.modelUpdates != result.simUpdates)
        result.detail =
            mismatch("updates", result.modelUpdates, result.simUpdates);
    else if (result.modelUpgrades != result.simUpgrades)
        result.detail =
            mismatch("upgrades", result.modelUpgrades, result.simUpgrades);
    result.consistent = result.detail.empty();
    return result;
}

std::string
counterexampleToJson(const std::string &policy_label,
                     sim::CoherenceProtocol protocol, std::uint32_t procs,
                     const Violation &violation)
{
    std::ostringstream os;
    stats::JsonWriter writer(os);
    writer.beginObject();
    writer.member("schema", kSchema);
    writer.member("policy", policy_label);
    writer.member("protocol", sim::coherenceProtocolName(protocol));
    writer.member("procs", static_cast<std::uint64_t>(procs));
    writer.member("invariant", violation.invariant);
    writer.member("detail", violation.detail);
    writer.key("trace");
    writer.beginArray();
    for (const Access &access : violation.trace) {
        writer.beginObject();
        writer.member("pid", static_cast<std::uint64_t>(access.pid));
        writer.member("op", access.isWrite ? "write" : "read");
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    os << '\n';
    return os.str();
}

ParsedTrace
parseCounterexample(const std::string &text)
{
    stats::JsonValue doc = stats::parseJson(text);
    if (doc.at("schema").asString() != kSchema)
        throw std::invalid_argument(
            "counterexample schema mismatch (expected " +
            std::string(kSchema) + ", got '" +
            doc.at("schema").asString() + "')");

    ParsedTrace parsed;
    parsed.policy = doc.at("policy").asString();
    parsed.protocol =
        sim::parseCoherenceProtocol(doc.at("protocol").asString());
    double procs = doc.at("procs").asNumber();
    if (procs < 1 || procs > 64)
        throw std::invalid_argument(
            "counterexample procs out of range [1, 64]");
    parsed.procs = static_cast<std::uint32_t>(procs);
    parsed.invariant = doc.at("invariant").asString();

    parsed.trace.reserve(doc.at("trace").items().size());
    for (const stats::JsonValue &entry : doc.at("trace").items()) {
        double pid = entry.at("pid").asNumber();
        if (pid < 0 || pid >= parsed.procs)
            throw std::invalid_argument(
                "counterexample trace pid outside the machine");
        const std::string &op = entry.at("op").asString();
        if (op != "read" && op != "write")
            throw std::invalid_argument(
                "counterexample trace op must be 'read' or 'write', got '" +
                op + "'");
        parsed.trace.push_back(
            Access{static_cast<std::uint32_t>(pid), op == "write"});
    }
    return parsed;
}

} // namespace wsg::verify
