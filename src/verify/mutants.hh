/**
 * @file
 * Deliberately broken coherence policies — the checker's test suite.
 *
 * A verifier that has never caught a bug proves nothing: each mutant
 * here plants one classic directory-protocol defect (a dropped
 * invalidation, a stale exclusive holder, a self-invalidation, a
 * missing upgrade, a lost reader...) behind the same CoherencePolicy
 * interface the real protocols use. The mutation gate demands that the
 * model checker kill every one of them — find a reachable invariant or
 * refinement violation with a concrete witness trace — while reporting
 * the five shipped protocols clean. CI runs the gate on every change,
 * so the checker itself is verified.
 *
 * Each mutant documents the invariant expected to kill it; the tests
 * pin that mapping so a weakened invariant cannot silently pass the
 * gate by having some *other* check catch the mutant.
 */

#ifndef WSG_VERIFY_MUTANTS_HH
#define WSG_VERIFY_MUTANTS_HH

#include <string>
#include <vector>

#include "sim/coherence.hh"
#include "verify/checker.hh"

namespace wsg::verify
{

/** One registered mutant policy. */
struct MutantInfo
{
    /** Registry name, e.g. "msi-drop-invalidation". */
    std::string name;
    /** What is broken, in one sentence. */
    std::string description;
    /** The shipped protocol this mutates — decides which refinement
     *  checks apply on top of the invariant catalogue. */
    sim::CoherenceProtocol base;
    /** The invariant/divergence expected to kill it (test-pinned). */
    std::string expectedKiller;
    /** The broken policy (a static instance; never null). */
    const sim::CoherencePolicy *policy;
};

/** All registered mutants, in stable registry order. */
const std::vector<MutantInfo> &mutantRegistry();

/** Look up a mutant by name; nullptr when unknown. */
const MutantInfo *findMutant(const std::string &name);

/** Outcome of running the checker battery against one mutant. */
struct MutantCheck
{
    std::string name;
    /** True when some invariant or refinement check failed (good —
     *  the defect was detected). */
    bool killed = false;
    /** Id of the first failing invariant/divergence. */
    std::string killedBy;
    /** The witness (valid when killed). */
    Violation counterexample;
    std::uint64_t statesExplored = 0;
    std::uint64_t transitionsChecked = 0;
};

/**
 * Run the invariant catalogue over @p mutant plus the refinement its
 * base protocol participates in (MESI mutants against the real MSI,
 * MI mutants' tombstone dominance against the real MSI). Bounded
 * exploration only — mutants need not be processor-anonymous, so the
 * symmetry reduction is not sound for them (checker.hh).
 */
MutantCheck checkMutant(const MutantInfo &mutant,
                        const CheckConfig &config);

} // namespace wsg::verify

#endif // WSG_VERIFY_MUTANTS_HH
