/**
 * @file
 * Exhaustive small-scope model checker for coherence policies.
 *
 * Two kinds of check, both over the model of model.hh:
 *
 *  - checkPolicy: breadth-first enumeration of every model state one
 *    policy can reach from the empty line, evaluating the full
 *    invariant catalogue on every transition. Bounded mode explores
 *    all access sequences up to CheckConfig::depth; depth 0 runs to
 *    the fixed point instead (the state space is finite, so closure is
 *    guaranteed). An optional symmetry reduction canonicalizes states
 *    under processor permutation — sound because the policies are
 *    processor-anonymous and every invariant is permutation-invariant.
 *
 *  - checkRelation: lockstep product enumeration of two policies fed
 *    identical access sequences, checking a cross-protocol refinement:
 *    WI must equal MSI state-for-state (the aliasing contract the
 *    golden artifacts rest on), MESI must match MSI's sharer sets and
 *    invalidations with the silent E->M upgrade as the only permitted
 *    divergence, and MI's tombstone (invalidated-and-not-yet-returned)
 *    set must dominate MSI's at every reachable prefix — "someone
 *    accessed since" contains "someone wrote since".
 *
 * Exploration order is fixed (FIFO frontier, symbols in (pid, read,
 * write) order), so results — including the first counterexample and
 * its trace — are byte-deterministic. Counterexample traces replay
 * through sim::Multiprocessor via replay.hh as a litmus test.
 */

#ifndef WSG_VERIFY_CHECKER_HH
#define WSG_VERIFY_CHECKER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/coherence.hh"
#include "verify/model.hh"

namespace wsg::verify
{

/** Bounds and options for one exploration. */
struct CheckConfig
{
    /** Model size; 1..kMaxModelProcs. */
    std::uint32_t procs = 4;
    /** Longest access sequence explored; 0 = run to the fixed point
     *  (exhaustive over the whole reachable space). */
    std::uint32_t depth = 8;
    /** Canonicalize states under processor permutation (checkPolicy
     *  only; ignored by checkRelation). Shrinks the frontier roughly
     *  procs!-fold on symmetric protocols. */
    bool symmetry = false;
    /** Stop after this many violations (the first is the shortest by
     *  BFS order, which is what the counterexample reports). */
    std::size_t maxViolations = 1;

    /** @throws std::invalid_argument on an out-of-range bound. */
    void validate() const;
};

/** One invariant or refinement failure, with its witness trace. */
struct Violation
{
    /** Invariant name (invariantName) or relation divergence id. */
    std::string invariant;
    /** Human sentence: what broke, in which state. */
    std::string detail;
    /** Access sequence from the empty line; the last access is the
     *  violating transition. */
    std::vector<Access> trace;
    /** Actions the policy returned on the violating transition. */
    sim::CoherenceActions actions;
};

/** Outcome of one exploration. */
struct CheckResult
{
    std::uint64_t statesExplored = 0;
    std::uint64_t transitionsChecked = 0;
    /** Longest distance (in accesses) of any explored state. */
    std::uint32_t maxDepthReached = 0;
    /** True when the run closed the reachable space: fixed-point mode
     *  reached closure, or bounded mode stopped generating new states
     *  before hitting the depth bound. */
    bool exhausted = false;
    std::vector<Violation> violations;

    bool clean() const { return violations.empty(); }
};

/** Exhaustively check the invariant catalogue over @p policy. */
CheckResult checkPolicy(const sim::CoherencePolicy &policy,
                        const CheckConfig &config);

/** Cross-protocol refinement kinds (see the file comment). */
enum class RelationKind : std::uint8_t
{
    /** lhs and rhs produce identical LineStates and actions on every
     *  access sequence (write-invalidate vs MSI). */
    StateEqual,
    /** lhs (a MESI) refines rhs (an MSI): equal sharer sets, equal
     *  invalidations and updates; upgrade may only be suppressed when
     *  the writer already held the line Exclusive. */
    MesiRefinesMsi,
    /** lhs (an MI) tombstone-dominates rhs (an MSI): lhs's
     *  invalidated-pending set contains rhs's at every prefix. */
    TombstoneDominance,
};

/** Kebab-case relation name (CLI/JSON spelling). */
const char *relationName(RelationKind kind);

/** Exhaustively check @p kind between two policies in lockstep. */
CheckResult checkRelation(RelationKind kind,
                          const sim::CoherencePolicy &lhs,
                          const sim::CoherencePolicy &rhs,
                          const CheckConfig &config);

/**
 * Everything the checker asserts about one shipped protocol: the
 * invariant catalogue plus the refinements that protocol takes part
 * in (WI: StateEqual vs MSI; MESI: MesiRefinesMsi vs MSI; MI:
 * TombstoneDominance vs MSI).
 */
struct ProtocolCheck
{
    sim::CoherenceProtocol protocol =
        sim::CoherenceProtocol::WriteInvalidate;
    CheckResult invariants;
    std::vector<std::pair<RelationKind, CheckResult>> relations;

    bool
    clean() const
    {
        if (!invariants.clean())
            return false;
        for (const auto &relation : relations) {
            if (!relation.second.clean())
                return false;
        }
        return true;
    }

    /** First violation across invariants and relations, or nullptr. */
    const Violation *firstViolation() const;

    std::uint64_t
    totalStates() const
    {
        std::uint64_t total = invariants.statesExplored;
        for (const auto &relation : relations)
            total += relation.second.statesExplored;
        return total;
    }

    std::uint64_t
    totalTransitions() const
    {
        std::uint64_t total = invariants.transitionsChecked;
        for (const auto &relation : relations)
            total += relation.second.transitionsChecked;
        return total;
    }
};

/** Run the full check battery for one shipped protocol. */
ProtocolCheck verifyProtocol(sim::CoherenceProtocol protocol,
                             const CheckConfig &config);

/** The shipped protocols, in reporting order. */
const std::vector<sim::CoherenceProtocol> &shippedProtocols();

} // namespace wsg::verify

#endif // WSG_VERIFY_CHECKER_HH
