/**
 * @file
 * wsg-modelcheck — exhaustive small-scope checking of the coherence
 * protocols (src/verify).
 *
 * Usage: wsg-modelcheck [--protocol NAME] [--procs N] [--depth N]
 *                       [--unbounded] [--symmetry] [--mutants]
 *                       [--json FILE] [--replay FILE]
 *
 * Default mode verifies every shipped protocol: full invariant
 * catalogue over the reachable model space plus the cross-protocol
 * refinements (WI == MSI, MESI refines MSI, MI tombstone-dominates
 * MSI). Any counterexample is replayed through sim::Multiprocessor as
 * a litmus test before it is reported, and can be exported as a
 * wsg-modelcheck-trace-v1 JSON document (--json).
 *
 * --mutants runs the mutation gate instead: every registered broken
 * policy must be killed by its pinned invariant with a
 * simulator-consistent witness, while the shipped protocols stay clean
 * (zero false alarms). --replay FILE re-runs a previously exported
 * counterexample through the simulator litmus.
 *
 * Exit status: 0 everything clean / gate passed, 1 violation found or
 * mutant survived or replay inconsistent, 2 bad usage or bad input.
 * Output is byte-deterministic (fixed exploration order, ordered JSON).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/coherence.hh"
#include "verify/checker.hh"
#include "verify/model.hh"
#include "verify/mutants.hh"
#include "verify/replay.hh"

namespace
{

using namespace wsg;

[[noreturn]] void
usage(int status)
{
    (status == 0 ? std::cout : std::cerr)
        << "usage: wsg-modelcheck [--protocol NAME] [--procs N] "
           "[--depth N]\n"
           "                      [--unbounded] [--symmetry] "
           "[--mutants]\n"
           "                      [--json FILE] [--replay FILE]\n"
           "\n"
           "Exhaustive small-scope model check of the coherence "
           "protocols: the\n"
           "invariant catalogue over every reachable (protocol x "
           "shadow-memory)\n"
           "state, plus the cross-protocol refinements.\n"
           "\n"
           "  --protocol NAME  check one protocol "
           "(write-invalidate, write-update,\n"
           "                   mi, msi, mesi); default: all\n"
           "  --procs N        model size, 1..6 (default 4)\n"
           "  --depth N        longest access sequence (default 8)\n"
           "  --unbounded      explore to the fixed point instead of "
           "a depth bound\n"
           "  --symmetry       canonicalize states under processor "
           "permutation\n"
           "  --mutants        run the mutation gate: every broken "
           "policy must be\n"
           "                   killed, every shipped protocol must "
           "stay clean\n"
           "  --json FILE      write the first counterexample as "
           "JSON ('-' = stdout)\n"
           "  --replay FILE    replay an exported counterexample "
           "through the\n"
           "                   simulator litmus ('-' = stdin)\n"
           "  --help           this text\n"
           "\n"
           "Exit status: 0 clean, 1 violation/surviving mutant/"
           "inconsistent replay,\n"
           "2 bad usage or bad input.\n";
    std::exit(status);
}

std::uint64_t
parseCount(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) {
        std::cerr << "error: " << flag
                  << " needs a non-negative integer, got '" << text
                  << "'\n";
        std::exit(2);
    }
    return v;
}

std::string
traceString(const std::vector<verify::Access> &trace)
{
    std::string out;
    for (const verify::Access &access : trace) {
        if (!out.empty())
            out += ' ';
        out += verify::describeAccess(access);
    }
    return out.empty() ? "(empty)" : out;
}

void
writeJsonDocument(const std::string &path, const std::string &doc)
{
    if (path == "-") {
        std::cout << doc;
        return;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::cerr << "error: cannot write '" << path << "'\n";
        std::exit(2);
    }
    out << doc;
}

/** Replay a violation's witness through the simulator litmus and
 *  describe the outcome on one line. */
bool
litmus(sim::CoherenceProtocol protocol, std::uint32_t procs,
       const verify::Violation &violation)
{
    verify::ReplayResult replay =
        verify::replayTrace(protocol, procs, violation.trace);
    std::cout << "  litmus: "
              << (replay.consistent
                      ? "model and simulator ledgers agree"
                      : "LEDGER MISMATCH " + replay.detail)
              << " (inval=" << replay.simInvalidations
              << " upd=" << replay.simUpdates
              << " upg=" << replay.simUpgrades << ")\n";
    return replay.consistent;
}

int
runProtocols(const std::optional<sim::CoherenceProtocol> &only,
             const verify::CheckConfig &config,
             const std::optional<std::string> &json_path)
{
    std::vector<sim::CoherenceProtocol> protocols;
    if (only)
        protocols.push_back(*only);
    else
        protocols = verify::shippedProtocols();

    bool all_clean = true;
    bool json_written = false;
    for (sim::CoherenceProtocol protocol : protocols) {
        auto start = std::chrono::steady_clock::now();
        verify::ProtocolCheck check =
            verify::verifyProtocol(protocol, config);
        auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        std::cout << sim::coherenceProtocolName(protocol) << ": "
                  << check.invariants.statesExplored << " states, "
                  << check.totalTransitions() << " transitions ("
                  << check.relations.size() << " refinement"
                  << (check.relations.size() == 1 ? "" : "s") << ", "
                  << (check.invariants.exhausted ? "exhausted"
                                                 : "depth-bounded")
                  << ", " << elapsed << " us): "
                  << (check.clean() ? "clean" : "VIOLATION") << "\n";
        if (check.clean())
            continue;
        all_clean = false;
        const verify::Violation *violation = check.firstViolation();
        std::cout << "  " << violation->invariant << ": "
                  << violation->detail << "\n"
                  << "  trace: " << traceString(violation->trace)
                  << "\n";
        litmus(protocol, config.procs, *violation);
        if (json_path && !json_written) {
            writeJsonDocument(
                *json_path,
                verify::counterexampleToJson(
                    sim::coherenceProtocolName(protocol), protocol,
                    config.procs, *violation));
            json_written = true;
        }
    }
    if (json_path && !json_written && json_path != "-")
        std::cout << "no counterexample: nothing written to "
                  << *json_path << "\n";
    return all_clean ? 0 : 1;
}

int
runMutants(const verify::CheckConfig &config,
           const std::optional<std::string> &json_path)
{
    // Zero false alarms first: the gate is meaningless if the checker
    // also fires on correct protocols.
    bool gate_ok = true;
    for (sim::CoherenceProtocol protocol : verify::shippedProtocols()) {
        verify::ProtocolCheck check =
            verify::verifyProtocol(protocol, config);
        if (!check.clean()) {
            gate_ok = false;
            const verify::Violation *violation = check.firstViolation();
            std::cout << "FALSE ALARM "
                      << sim::coherenceProtocolName(protocol) << ": "
                      << violation->invariant << " on "
                      << traceString(violation->trace) << "\n";
        }
    }
    if (gate_ok)
        std::cout << "shipped protocols: all "
                  << verify::shippedProtocols().size()
                  << " clean (no false alarms)\n";

    std::size_t killed = 0;
    bool json_written = false;
    const std::vector<verify::MutantInfo> &registry =
        verify::mutantRegistry();
    for (const verify::MutantInfo &mutant : registry) {
        verify::MutantCheck check = verify::checkMutant(mutant, config);
        if (!check.killed) {
            gate_ok = false;
            std::cout << "SURVIVED " << mutant.name << " ("
                      << mutant.description << ")\n";
            continue;
        }
        ++killed;
        std::cout << "killed " << mutant.name << " by "
                  << check.killedBy << " on "
                  << traceString(check.counterexample.trace) << " ("
                  << check.statesExplored << " states)\n";
        if (check.killedBy != mutant.expectedKiller) {
            gate_ok = false;
            std::cout << "  EXPECTED KILLER MISMATCH: wanted "
                      << mutant.expectedKiller << "\n";
        }
        // Witness traces must be executable on the real machine: the
        // shipped base protocol replays them with a consistent ledger.
        if (!litmus(mutant.base, config.procs, check.counterexample))
            gate_ok = false;
        if (json_path && !json_written) {
            writeJsonDocument(*json_path,
                              verify::counterexampleToJson(
                                  "mutant:" + mutant.name, mutant.base,
                                  config.procs, check.counterexample));
            json_written = true;
        }
    }
    std::cout << "mutation gate: " << killed << "/" << registry.size()
              << " mutants killed, "
              << (gate_ok ? "gate PASSED" : "gate FAILED") << "\n";
    return gate_ok ? 0 : 1;
}

int
runReplay(const std::string &path)
{
    std::string text;
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        text = buffer.str();
    } else {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "error: cannot read '" << path << "'\n";
            return 2;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }

    verify::ParsedTrace parsed = verify::parseCounterexample(text);
    verify::ReplayResult replay =
        verify::replayTrace(parsed.protocol, parsed.procs, parsed.trace);
    std::cout << "replay " << parsed.policy << " ("
              << sim::coherenceProtocolName(parsed.protocol) << ", "
              << parsed.procs << " procs, " << parsed.trace.size()
              << " accesses, invariant " << parsed.invariant
              << "): " << (replay.consistent ? "consistent" : "MISMATCH")
              << "\n"
              << "  invalidations model=" << replay.modelInvalidations
              << " sim=" << replay.simInvalidations
              << "\n  updates       model=" << replay.modelUpdates
              << " sim=" << replay.simUpdates
              << "\n  upgrades      model=" << replay.modelUpgrades
              << " sim=" << replay.simUpgrades << "\n";
    return replay.consistent ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::optional<sim::CoherenceProtocol> protocol;
    std::optional<std::string> json_path;
    std::optional<std::string> replay_path;
    bool mutants = false;
    bool unbounded = false;
    verify::CheckConfig config;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--protocol") {
            try {
                protocol =
                    sim::parseCoherenceProtocol(value("--protocol"));
            } catch (const std::exception &e) {
                std::cerr << "error: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--procs") {
            config.procs = static_cast<std::uint32_t>(
                parseCount("--procs", value("--procs")));
        } else if (arg == "--depth") {
            config.depth = static_cast<std::uint32_t>(
                parseCount("--depth", value("--depth")));
        } else if (arg == "--unbounded") {
            unbounded = true;
        } else if (arg == "--symmetry") {
            config.symmetry = true;
        } else if (arg == "--mutants") {
            mutants = true;
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--replay") {
            replay_path = value("--replay");
        } else {
            std::cerr << "error: unknown argument '" << arg << "'\n";
            usage(2);
        }
    }
    if (unbounded)
        config.depth = 0;

    try {
        config.validate();
        if (replay_path)
            return runReplay(*replay_path);
        if (mutants)
            return runMutants(config, json_path);
        return runProtocols(protocol, config, json_path);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
