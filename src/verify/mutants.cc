#include "verify/mutants.hh"

#include <bit>

namespace wsg::verify
{

namespace
{

using sim::CoherenceActions;
using sim::CoherencePolicy;
using sim::CoherenceProtocol;
using sim::LineState;

/**
 * Correct MSI transition, the baseline several mutants perturb.
 * Duplicated from the shipped policy *on purpose*: the mutants must
 * not share code with the implementation under test, or a bug fixed in
 * one place would silently change what the gate exercises.
 */
CoherenceActions
msiStep(LineState &line, std::uint32_t pid, bool is_write)
{
    CoherenceActions actions;
    std::uint64_t self = std::uint64_t{1} << pid;
    if (is_write) {
        actions.invalidateMask = line.sharers & ~self;
        actions.upgrade = (line.sharers & self) != 0 &&
                          line.exclusivePlusOne != pid + 1;
        line.sharers = self;
        line.exclusivePlusOne = pid + 1;
    } else {
        line.sharers |= self;
        if (line.exclusivePlusOne != pid + 1)
            line.exclusivePlusOne = 0;
    }
    return actions;
}

/** Writes take ownership without ever sending an invalidation: the
 *  directory forgets the other holders but their copies live on. */
class MsiDropInvalidation : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions = msiStep(line, pid, is_write);
        if (is_write)
            actions.invalidateMask = 0;
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Msi;
    }
};

/** Writes keep the old sharers in the mask (no purge): remote copies
 *  are both stale and still directory-visible. */
class MsiStaleSharers : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        if (!is_write)
            return msiStep(line, pid, false);
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        actions.upgrade = (line.sharers & self) != 0 &&
                          line.exclusivePlusOne != pid + 1;
        line.sharers |= self;
        line.exclusivePlusOne = pid + 1;
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Msi;
    }
};

/** The writer invalidates its own copy along with the others'. */
class MsiSelfInvalidate : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        std::uint64_t before = line.sharers;
        CoherenceActions actions = msiStep(line, pid, is_write);
        if (is_write && (before & (std::uint64_t{1} << pid)) != 0)
            actions.invalidateMask |= std::uint64_t{1} << pid;
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Msi;
    }
};

/** Writes also "invalidate" the next processor up, sharer or not. */
class MsiInvalidateNonsharer : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions = msiStep(line, pid, is_write);
        if (is_write)
            actions.invalidateMask |= std::uint64_t{1} << (pid + 1);
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Msi;
    }
};

/** Reads consume the line without ever joining the sharer set: the
 *  reader's copy is invisible to later invalidations. */
class MsiForgetReader : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        if (is_write)
            return msiStep(line, pid, true);
        if (line.exclusivePlusOne != pid + 1)
            line.exclusivePlusOne = 0;
        return {};
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Msi;
    }
};

/** A remote read joins the sharer set but leaves the old exclusive
 *  holder recorded — the downgrade to Shared never happens. */
class MsiStaleExclusive : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        if (is_write)
            return msiStep(line, pid, true);
        line.sharers |= std::uint64_t{1} << pid;
        return {};
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Msi;
    }
};

/** Correct MESI transition (same duplication rationale as msiStep). */
CoherenceActions
mesiStep(LineState &line, std::uint32_t pid, bool is_write)
{
    CoherenceActions actions;
    std::uint64_t self = std::uint64_t{1} << pid;
    if (is_write) {
        actions.invalidateMask = line.sharers & ~self;
        actions.upgrade = (line.sharers & self) != 0 &&
                          line.exclusivePlusOne != pid + 1;
        line.sharers = self;
        line.exclusivePlusOne = pid + 1;
    } else if (line.sharers == 0) {
        line.sharers = self;
        line.exclusivePlusOne = pid + 1;
    } else {
        line.sharers |= self;
        if (line.exclusivePlusOne != pid + 1)
            line.exclusivePlusOne = 0;
    }
    return actions;
}

/** Grants Exclusive on every read miss, even with other sharers. */
class MesiSharedExclusiveGrant : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        if (is_write)
            return mesiStep(line, pid, true);
        line.sharers |= std::uint64_t{1} << pid;
        line.exclusivePlusOne = pid + 1;
        return {};
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Mesi;
    }
};

/** Never reports an ownership upgrade: a write from genuinely Shared
 *  state pretends to be the silent E->M transition. */
class MesiMissingUpgrade : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions = mesiStep(line, pid, is_write);
        actions.upgrade = false;
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Mesi;
    }
};

/** MI whose writes no longer purge the other holders (reads still
 *  do): its tombstone set drops below MSI's. */
class MiNoWriteInvalidate : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        if (is_write) {
            line.sharers |= self;
            line.exclusivePlusOne = pid + 1;
        } else {
            actions.invalidateMask = line.sharers & ~self;
            line.sharers = self;
            line.exclusivePlusOne = pid + 1;
        }
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::Mi;
    }
};

/** Write-update that only updates half the other sharers (rounding
 *  down): the rest keep superseded values. */
class WuPartialUpdate : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        if (is_write) {
            actions.updates = static_cast<std::uint32_t>(
                                  std::popcount(line.sharers & ~self)) /
                              2;
        }
        line.sharers |= self;
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::WriteUpdate;
    }
};

/** Write-update that never records readers as sharers, so later
 *  writes do not know whom to update. */
class WuLostReader : public CoherencePolicy
{
  public:
    CoherenceActions
    onAccess(LineState &line, std::uint32_t pid,
             bool is_write) const override
    {
        CoherenceActions actions;
        std::uint64_t self = std::uint64_t{1} << pid;
        if (is_write) {
            actions.updates = static_cast<std::uint32_t>(
                std::popcount(line.sharers & ~self));
            line.sharers |= self;
        }
        return actions;
    }

    CoherenceProtocol protocol() const override
    {
        return CoherenceProtocol::WriteUpdate;
    }
};

} // namespace

const std::vector<MutantInfo> &
mutantRegistry()
{
    static const MsiDropInvalidation msi_drop_invalidation;
    static const MsiStaleSharers msi_stale_sharers;
    static const MsiSelfInvalidate msi_self_invalidate;
    static const MsiInvalidateNonsharer msi_invalidate_nonsharer;
    static const MsiForgetReader msi_forget_reader;
    static const MsiStaleExclusive msi_stale_exclusive;
    static const MesiSharedExclusiveGrant mesi_shared_grant;
    static const MesiMissingUpgrade mesi_missing_upgrade;
    static const MiNoWriteInvalidate mi_no_write_invalidate;
    static const WuPartialUpdate wu_partial_update;
    static const WuLostReader wu_lost_reader;
    static const std::vector<MutantInfo> registry = {
        {"msi-drop-invalidation",
         "writes take ownership without sending invalidations",
         CoherenceProtocol::Msi, "directory-precision",
         &msi_drop_invalidation},
        {"msi-stale-sharers",
         "writes leave the old sharers in the mask un-invalidated",
         CoherenceProtocol::Msi, "single-writer", &msi_stale_sharers},
        {"msi-self-invalidate",
         "the writer invalidates its own copy too",
         CoherenceProtocol::Msi, "no-self-invalidation",
         &msi_self_invalidate},
        {"msi-invalidate-nonsharer",
         "writes invalidate a processor that holds no copy",
         CoherenceProtocol::Msi, "invalidate-subset",
         &msi_invalidate_nonsharer},
        {"msi-forget-reader",
         "reads never join the sharer set",
         CoherenceProtocol::Msi, "directory-precision",
         &msi_forget_reader},
        {"msi-stale-exclusive",
         "remote reads do not downgrade the exclusive holder",
         CoherenceProtocol::Msi, "single-writer",
         &msi_stale_exclusive},
        {"mesi-shared-exclusive-grant",
         "reads are granted Exclusive even with other sharers present",
         CoherenceProtocol::Mesi, "single-writer",
         &mesi_shared_grant},
        {"mesi-missing-upgrade",
         "writes from Shared state never report an upgrade message",
         CoherenceProtocol::Mesi, "mesi-missing-upgrade",
         &mesi_missing_upgrade},
        {"mi-no-write-invalidate",
         "MI writes stop purging the other holders",
         CoherenceProtocol::Mi, "single-writer",
         &mi_no_write_invalidate},
        {"wu-partial-update",
         "writes update only half of the other sharers",
         CoherenceProtocol::WriteUpdate, "update-coverage",
         &wu_partial_update},
        {"wu-lost-reader",
         "readers are never recorded as sharers",
         CoherenceProtocol::WriteUpdate, "directory-precision",
         &wu_lost_reader},
    };
    return registry;
}

const MutantInfo *
findMutant(const std::string &name)
{
    for (const MutantInfo &mutant : mutantRegistry()) {
        if (mutant.name == name)
            return &mutant;
    }
    return nullptr;
}

MutantCheck
checkMutant(const MutantInfo &mutant, const CheckConfig &config)
{
    CheckConfig bounded = config;
    bounded.symmetry = false; // unsound for non-anonymous policies
    MutantCheck out;
    out.name = mutant.name;
    CheckResult invariants = checkPolicy(*mutant.policy, bounded);
    out.statesExplored = invariants.statesExplored;
    out.transitionsChecked = invariants.transitionsChecked;
    if (!invariants.clean()) {
        out.killed = true;
        out.killedBy = invariants.violations.front().invariant;
        out.counterexample = invariants.violations.front();
        return out;
    }
    const sim::CoherencePolicy &msi =
        sim::coherencePolicyFor(sim::CoherenceProtocol::Msi);
    CheckResult relation;
    switch (mutant.base) {
      case sim::CoherenceProtocol::WriteInvalidate:
      case sim::CoherenceProtocol::Msi:
        relation = checkRelation(RelationKind::StateEqual,
                                 *mutant.policy, msi, bounded);
        break;
      case sim::CoherenceProtocol::Mesi:
        relation = checkRelation(RelationKind::MesiRefinesMsi,
                                 *mutant.policy, msi, bounded);
        break;
      case sim::CoherenceProtocol::Mi:
        relation = checkRelation(RelationKind::TombstoneDominance,
                                 *mutant.policy, msi, bounded);
        break;
      case sim::CoherenceProtocol::WriteUpdate:
        // No refinement partner; the invariant catalogue must do it.
        out.killed = false;
        return out;
    }
    out.statesExplored += relation.statesExplored;
    out.transitionsChecked += relation.transitionsChecked;
    if (!relation.clean()) {
        out.killed = true;
        out.killedBy = relation.violations.front().invariant;
        out.counterexample = relation.violations.front();
    }
    return out;
}

} // namespace wsg::verify
