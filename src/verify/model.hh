/**
 * @file
 * Small-scope semantic model of a coherence protocol, for exhaustive
 * checking (see checker.hh).
 *
 * A sim::CoherencePolicy is a pure transition function over
 * sim::LineState, so its entire behaviour on one line is a finite
 * automaton: states are (sharer mask, exclusive holder), symbols are
 * (processor, read|write). The paper's conclusions about coherence-miss
 * composition rest on those automata being right, and the simulator
 * only ever *spot-checks* them on application traces. This model makes
 * the correctness argument exhaustive instead: it pairs the protocol
 * state with a shadow-memory abstraction — per processor, does it hold
 * no copy, the current value, or a stale one — and states the safety
 * properties a directory protocol must keep as per-transition
 * invariants.
 *
 * The shadow-copy abstraction replaces concrete data values: a write
 * conceptually bumps the line's version, so every remote copy that is
 * neither invalidated nor updated in the same transition becomes Stale.
 * Reads fetch the current value only when the processor holds no copy —
 * a cached copy, stale or not, is consumed as-is, which is exactly the
 * hazard an unsound protocol creates. Because version numbers collapse
 * to {none, current, stale}, the product space stays finite and small
 * (<= 2^N * (N+1) * 3^N for N processors), so the checker can close it.
 *
 * Invariant catalogue (InvariantId):
 *  - state-bounds:          sharers/exclusive holder/invalidation mask
 *                           never name a processor outside the machine.
 *  - no-self-invalidation:  an access never invalidates its own copy.
 *  - invalidate-subset:     only current sharers can be invalidated.
 *  - holder-in-sharers:     a recorded exclusive holder is a sharer.
 *  - single-writer:         an exclusive/modified holder is the *only*
 *                           sharer (SWMR).
 *  - update-coverage:       after a write, every remaining remote
 *                           sharer received an update message.
 *  - directory-precision:   the sharer mask equals the set of
 *                           processors holding a copy (this simulator
 *                           has no silent evictions, so the directory
 *                           must be exact, not an over-approximation).
 *  - value-freshness:       every sharer's copy is the current value
 *                           (the shadow-memory data-value invariant).
 */

#ifndef WSG_VERIFY_MODEL_HH
#define WSG_VERIFY_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/coherence.hh"

namespace wsg::verify
{

/** Largest machine the model encodes (the ISSUE-9 small-scope bound;
 *  the simulator itself goes to 64, see the boundary tests). */
inline constexpr std::uint32_t kMaxModelProcs = 6;

/** One access symbol of the model's alphabet. */
struct Access
{
    std::uint32_t pid = 0;
    bool isWrite = false;

    bool
    operator==(const Access &other) const
    {
        return pid == other.pid && isWrite == other.isWrite;
    }
};

/** Shadow state of one processor's copy of the line. */
enum class CopyState : std::uint8_t
{
    /** Holds no copy. */
    None,
    /** Holds the current value. */
    Fresh,
    /** Holds a superseded value — consuming it is the coherence bug
     *  every invariant ultimately guards against. */
    Stale,
};

/** Protocol state plus the shadow-memory abstraction. */
struct ModelState
{
    sim::LineState line{};
    std::array<CopyState, kMaxModelProcs> copies{};

    bool
    operator==(const ModelState &other) const
    {
        return line.sharers == other.line.sharers &&
               line.exclusivePlusOne == other.line.exclusivePlusOne &&
               copies == other.copies;
    }
};

/** The per-transition safety properties (see the file comment). */
enum class InvariantId : std::uint8_t
{
    StateBounds,
    NoSelfInvalidation,
    InvalidateSubset,
    HolderInSharers,
    SingleWriter,
    UpdateCoverage,
    DirectoryPrecision,
    ValueFreshness,
};

/** Kebab-case invariant name (the CLI/JSON spelling). */
const char *invariantName(InvariantId id);

/** One applied transition: the successor state plus the actions the
 *  policy requested (the invariants judge both). */
struct Step
{
    ModelState next;
    sim::CoherenceActions actions;
};

/**
 * Apply one access to the model: run the policy's transition on the
 * protocol state, then the shadow-copy semantics described in the file
 * comment. Pure — @p state is not modified.
 */
Step applyStep(const sim::CoherencePolicy &policy,
               const ModelState &state, Access access,
               std::uint32_t procs);

/**
 * Evaluate every invariant on one transition @p pre --access/actions-->
 * @p post and append the violated ones to @p out. Returns true when the
 * transition is clean.
 */
bool checkInvariants(const ModelState &pre, Access access,
                     const Step &step, std::uint32_t procs,
                     std::vector<InvariantId> &out);

/**
 * Dense encoding of a model state for visited-set keys; total over
 * procs <= kMaxModelProcs. Distinct states encode distinctly.
 */
std::uint64_t encodeState(const ModelState &state, std::uint32_t procs);

/** Compact human rendering, e.g. "sharers={0,2} excl=2 copies=F.S"
 *  (one letter per processor: '.'=none, 'F'=fresh, 'S'=stale). */
std::string describeState(const ModelState &state, std::uint32_t procs);

/** Render an access as "w3" / "r0" (the trace spelling). */
std::string describeAccess(Access access);

/**
 * Apply the processor permutation @p perm (old index -> new index) to a
 * state: permutes the sharer mask, the exclusive holder and the shadow
 * copies. The symmetry reduction canonicalizes with the minimum
 * encoding over all permutations.
 */
ModelState permuteState(const ModelState &state,
                        const std::array<std::uint8_t, kMaxModelProcs> &perm,
                        std::uint32_t procs);

} // namespace wsg::verify

#endif // WSG_VERIFY_MODEL_HH
