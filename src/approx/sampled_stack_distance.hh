/**
 * @file
 * Spatially-sampled LRU stack-distance profiler (SHARDS-style).
 *
 * Wraps the exact StackDistanceProfiler behind a hash admission filter:
 * a line is tracked iff mixAddr(line) < threshold. Spatial hashing keeps
 * *all* references to a sampled line, so reuse pairs survive intact and
 * a raw distance d measured among sampled lines estimates a full-trace
 * distance of d / rate; access() returns distances already rescaled to
 * full-trace line units.
 *
 * Two variants:
 *  - FixedRate: threshold = rate * 2^64, constant for the run.
 *  - FixedSize: threshold starts at "admit all" and is lowered whenever
 *    the distinct-line budget overflows; the line carrying the largest
 *    hash is evicted (fully forgotten, not tombstoned) and becomes the
 *    new exclusive threshold. Memory stays O(maxLines); distances are
 *    scaled by the rate in effect at admission time, and curve
 *    normalization uses the SHARDS_adj expected-sample correction
 *    (see ApproxCurve).
 *
 * Coherence: invalidate() is filtered by the same admission test, so a
 * sampled line sees exactly the invalidations it would see unsampled
 * (the estimate of coherence misses converges at rate 1/rate), while an
 * unsampled line can never acquire stack state through the coherence
 * path.
 *
 * Determinism: admission depends only on the line address and the
 * eviction history, which is itself a pure function of the reference
 * stream — no RNG, no clock, no pointer order. Identical traces produce
 * identical sampled profiles at any worker count.
 */

#ifndef WSG_APPROX_SAMPLED_STACK_DISTANCE_HH
#define WSG_APPROX_SAMPLED_STACK_DISTANCE_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "approx/sampling.hh"
#include "memsys/profiler.hh"

namespace wsg::approx
{

/** Result of profiling one reference through the admission filter. */
struct SampledSample
{
    /** False when the hash filter rejected the line; `sample` is then
     *  meaningless and the reference left no profiler state behind. */
    bool admitted = false;
    /** Classified distance, already scaled to full-trace line units. */
    memsys::DistanceSample sample;
};

/**
 * One processor's sampled profiler. API mirrors memsys::Profiler so
 * sim::Multiprocessor can drive any construction through one code path;
 * in SamplingMode::None it *is* the underlying profiler (every
 * reference admitted, distances unscaled, zero per-access overhead
 * beyond one branch).
 *
 * The underlying construction is chosen by ProfilerKind. The Mattson
 * kinds compose freely with sampling; AET does not (reuse times on a
 * sampled sub-trace do not rescale like stack distances), so AET plus
 * an enabled sampling mode is rejected at construction.
 */
class SampledStackDistanceProfiler
{
  public:
    explicit SampledStackDistanceProfiler(
        const SamplingConfig &config = {},
        memsys::ProfilerKind kind = memsys::ProfilerKind::TreeMattson);

    /** Profile a reference; rejected lines update nothing. */
    SampledSample access(Addr line);

    /**
     * Coherence invalidation, filtered: only admitted lines reach the
     * underlying stack. @return true when the line was live (implies it
     * was sampled).
     */
    bool invalidate(Addr line);

    /** Whether the admission filter currently lets @p line through. */
    bool
    wouldAdmit(Addr line) const
    {
        return config_.mode == SamplingMode::None ||
               lineHash(line) < threshold_;
    }

    /** Current admission rate (1 for exact; monotonically non-
     *  increasing over a fixed-size run). */
    double
    effectiveRate() const
    {
        return config_.mode == SamplingMode::None
                   ? 1.0
                   : rateForThreshold(threshold_);
    }

    /** References seen / admitted since construction or clear(). */
    std::uint64_t totalRefs() const { return totalRefs_; }
    std::uint64_t sampledRefs() const { return sampledRefs_; }

    /** Distinct lines currently tracked (sampled footprint). */
    std::uint64_t trackedLines() const { return inner_->touchedLines(); }

    /** Which construction is underneath. */
    memsys::ProfilerKind kind() const { return inner_->kind(); }

    /** Passthrough of the construction's capacity transform. */
    std::uint64_t
    capacityToThreshold(std::uint64_t capacity_lines) const
    {
        return inner_->capacityToThreshold(capacity_lines);
    }

    /**
     * Estimated full-trace footprint in lines: tracked lines divided by
     * the effective rate (exact mode: the exact count).
     */
    std::uint64_t estimatedTouchedLines() const;

    /** Approximate resident bytes (inner profiler + eviction heap). */
    std::uint64_t memoryBytes() const;

    const SamplingConfig &config() const { return config_; }
    const memsys::Profiler &inner() const { return *inner_; }

    /** Forget everything; the admission threshold resets too. */
    void clear();

  private:
    /** Admission hash: the config's salt picks the draw. */
    std::uint64_t
    lineHash(Addr line) const
    {
        return mixAddr(line ^ config_.hashSalt);
    }

    void shrinkToBudget();

    SamplingConfig config_;
    /** Admit iff lineHash(line) < threshold_. */
    std::uint64_t threshold_ = kAdmitAll;
    std::unique_ptr<memsys::Profiler> inner_;
    /**
     * FixedSize only: (hash, line) max-heap over distinct tracked
     * lines; the top is the next eviction victim when the budget
     * overflows. Each line is pushed exactly once (on first admission)
     * and popped exactly once (on eviction), so entries are never
     * stale.
     */
    std::priority_queue<std::pair<std::uint64_t, Addr>> victims_;
    std::uint64_t totalRefs_ = 0;
    std::uint64_t sampledRefs_ = 0;
};

} // namespace wsg::approx

#endif // WSG_APPROX_SAMPLED_STACK_DISTANCE_HH
