#include "approx/profiler_factory.hh"

#include "approx/aet.hh"
#include "memsys/stack_distance.hh"
#include "memsys/tree_stack_distance.hh"

namespace wsg::approx
{

std::unique_ptr<memsys::Profiler>
makeProfiler(memsys::ProfilerKind kind)
{
    switch (kind) {
      case memsys::ProfilerKind::ListMattson:
        return std::make_unique<memsys::StackDistanceProfiler>();
      case memsys::ProfilerKind::Aet:
        return std::make_unique<AetProfiler>();
      case memsys::ProfilerKind::TreeMattson:
        break;
    }
    return std::make_unique<memsys::TreeStackDistanceProfiler>();
}

} // namespace wsg::approx
