#include "approx/approx_curve.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wsg::approx
{

namespace
{

/**
 * x where @p curve falls through @p level, log2-interpolated between
 * the straddling grid points. Noise can produce several crossings; the
 * one nearest @p anchor_bytes (in log distance) is the transition
 * being measured. Falls back to @p fallback_bytes when the curve never
 * straddles the level (degenerate flat knee).
 *
 * Displacement is a *horizontal* measure, so both curves must be cut
 * at the same level — the exact knee's half depth — and anchored at
 * the same location. Cutting each curve at its own detected knee's
 * half depth would fold the detectors' metadata quantization (the
 * before/after rates are read off adjacent grid points) into a metric
 * that is supposed to measure only where the drop sits.
 */
double
levelCrossing(const stats::Curve &curve, double level,
              double anchor_bytes, double fallback_bytes)
{
    const auto &pts = curve.points();
    double best = fallback_bytes;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i < pts.size(); ++i) {
        double y1 = pts[i - 1].y;
        double y2 = pts[i].y;
        if (!(y1 >= level && level > y2))
            continue;
        double t = (y1 - level) / (y1 - y2);
        double lx = std::log2(pts[i - 1].x) +
                    t * (std::log2(pts[i].x) - std::log2(pts[i - 1].x));
        double x = std::exp2(lx);
        double dist = std::fabs(std::log2(x / anchor_bytes));
        if (dist < best_dist) {
            best_dist = dist;
            best = x;
        }
    }
    return best;
}

} // namespace

std::uint64_t
ApproxCurve::sampledMisses(const SampledCounts &counts,
                           std::uint64_t capacity_lines,
                           bool include_cold)
{
    std::uint64_t misses =
        counts.distances
            ? counts.distances->countAtLeast(capacity_lines)
            : 0;
    misses += counts.coherence;
    if (include_cold)
        misses += counts.cold;
    return misses;
}

double
ApproxCurve::missRate(const SampledCounts &counts,
                      std::uint64_t capacity_lines,
                      bool include_cold) const
{
    if (counts.expectedSampledRefs <= 0.0)
        return 0.0;
    double misses = static_cast<double>(
        sampledMisses(counts, capacity_lines, include_cold));
    return misses / counts.expectedSampledRefs;
}

double
ApproxCurve::missCount(const SampledCounts &counts,
                       std::uint64_t capacity_lines,
                       bool include_cold) const
{
    // Exact mode: return the exact count without touching the rate
    // arithmetic, so existing golden curves stay bit-identical.
    if (!sampled()) {
        return static_cast<double>(
            sampledMisses(counts, capacity_lines, include_cold));
    }
    return missRate(counts, capacity_lines, include_cold) *
           static_cast<double>(counts.totalRefs);
}

double
ApproxCurve::missRateFromMisses(const SampledCounts &counts,
                                std::uint64_t sampled_misses) const
{
    if (counts.expectedSampledRefs <= 0.0)
        return 0.0;
    return static_cast<double>(sampled_misses) /
           counts.expectedSampledRefs;
}

double
ApproxCurve::missCountFromMisses(const SampledCounts &counts,
                                 std::uint64_t sampled_misses) const
{
    if (!sampled())
        return static_cast<double>(sampled_misses);
    return missRateFromMisses(counts, sampled_misses) *
           static_cast<double>(counts.totalRefs);
}

double
ApproxCurve::scaledCount(const SampledCounts &counts,
                         std::uint64_t raw) const
{
    // Exact mode: the counter is already the full-trace count.
    if (!sampled())
        return static_cast<double>(raw);
    if (counts.expectedSampledRefs <= 0.0)
        return 0.0;
    return static_cast<double>(raw) *
           (static_cast<double>(counts.totalRefs) /
            counts.expectedSampledRefs);
}

double
CurveComparison::maxKneeDisplacementSteps() const
{
    double worst = 0.0;
    for (const KneeMatch &k : knees)
        worst = std::max(worst, k.displacementSteps);
    return worst;
}

CurveComparison
compareCurves(const stats::Curve &exact, const stats::Curve &approx)
{
    CurveComparison cmp;
    if (exact.empty() || approx.empty())
        return cmp;
    double sum = 0.0;
    for (const stats::CurvePoint &p : exact.points()) {
        double err = std::fabs(approx.valueAtOrBelow(p.x) - p.y);
        sum += err;
        cmp.maxAbsError = std::max(cmp.maxAbsError, err);
    }
    cmp.meanAbsError = sum / static_cast<double>(exact.size());
    cmp.plateauMeanAbsError = cmp.meanAbsError;
    cmp.plateauMaxAbsError = cmp.maxAbsError;
    return cmp;
}

CurveComparison
compareStudies(const stats::Curve &exact_curve,
               const std::vector<stats::WorkingSet> &exact_knees,
               const stats::Curve &approx_curve,
               const std::vector<stats::WorkingSet> &approx_knees,
               int points_per_octave)
{
    CurveComparison cmp = compareCurves(exact_curve, approx_curve);
    std::size_t paired =
        std::min(exact_knees.size(), approx_knees.size());
    cmp.kneeCountDiff =
        std::max(exact_knees.size(), approx_knees.size()) - paired;
    for (std::size_t i = 0; i < paired; ++i) {
        KneeMatch match;
        match.level = exact_knees[i].level;
        double half = 0.5 * (exact_knees[i].missRateBefore +
                             exact_knees[i].missRateAfter);
        match.exactBytes =
            levelCrossing(exact_curve, half, exact_knees[i].sizeBytes,
                          exact_knees[i].sizeBytes);
        match.approxBytes =
            levelCrossing(approx_curve, half, exact_knees[i].sizeBytes,
                          approx_knees[i].sizeBytes);
        if (match.exactBytes > 0.0 && match.approxBytes > 0.0) {
            match.displacementSteps =
                std::fabs(std::log2(match.approxBytes /
                                    match.exactBytes)) *
                static_cast<double>(points_per_octave);
        }
        cmp.knees.push_back(match);
    }

    // Off-transition (plateau) error: drop the grid points where the
    // exact curve is in transition, widened by one step each way to
    // cover the approximation's smear tails. Transition means either a
    // detected knee's half-depth face or any segment dropping faster
    // than the flatness tolerance — an undetected sub-knee step (too
    // shallow for the detector) smears under approximation exactly
    // like a detected one, and a "plateau" metric that charges for it
    // measures the step's location, not the level accuracy it is
    // meant to bound.
    constexpr double kFlatTolerance = 0.01;
    const auto &pts = exact_curve.points();
    std::vector<bool> on_face(pts.size(), false);
    for (const stats::WorkingSet &knee : exact_knees) {
        double half = 0.5 * (knee.missRateBefore + knee.missRateAfter);
        for (std::size_t i = 1; i < pts.size(); ++i) {
            if (pts[i - 1].y >= half && half > pts[i].y) {
                on_face[i - 1] = true;
                on_face[i] = true;
            }
        }
    }
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (std::fabs(pts[i - 1].y - pts[i].y) > kFlatTolerance) {
            on_face[i - 1] = true;
            on_face[i] = true;
        }
    }
    std::vector<bool> banded = on_face;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (!on_face[i])
            continue;
        if (i > 0)
            banded[i - 1] = true;
        if (i + 1 < pts.size())
            banded[i + 1] = true;
    }
    double sum = 0.0;
    std::size_t kept = 0;
    double worst = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (banded[i])
            continue;
        double err =
            std::fabs(approx_curve.valueAtOrBelow(pts[i].x) - pts[i].y);
        sum += err;
        worst = std::max(worst, err);
        ++kept;
    }
    if (kept > 0) {
        cmp.plateauMeanAbsError = sum / static_cast<double>(kept);
        cmp.plateauMaxAbsError = worst;
    }
    return cmp;
}

stats::Curve
averageCurves(const std::vector<stats::Curve> &curves,
              const std::string &name)
{
    if (curves.empty())
        throw std::invalid_argument("averageCurves: no curves");
    stats::Curve mean(name);
    const auto &grid = curves.front().points();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        double sum = 0.0;
        for (const stats::Curve &c : curves) {
            if (c.size() != grid.size() ||
                c.points()[i].x != grid[i].x) {
                throw std::invalid_argument(
                    "averageCurves: curves sample different x-grids");
            }
            sum += c.points()[i].y;
        }
        mean.addPoint(grid[i].x,
                      sum / static_cast<double>(curves.size()));
    }
    return mean;
}

} // namespace wsg::approx
