#include "approx/sampled_stack_distance.hh"

#include <cmath>
#include <stdexcept>

#include "approx/profiler_factory.hh"

namespace wsg::approx
{

SampledStackDistanceProfiler::SampledStackDistanceProfiler(
    const SamplingConfig &config, memsys::ProfilerKind kind)
    : config_(config), inner_(makeProfiler(kind))
{
    config_.validate();
    if (kind == memsys::ProfilerKind::Aet && config_.enabled()) {
        throw std::invalid_argument(
            "SampledStackDistanceProfiler: the AET profiler does not "
            "compose with spatial sampling (reuse times measured on a "
            "sampled sub-trace are not rescalable); use an exact "
            "Mattson kind or disable sampling");
    }
    if (config_.mode == SamplingMode::FixedRate)
        threshold_ = thresholdForRate(config_.rate);
}

SampledSample
SampledStackDistanceProfiler::access(Addr line)
{
    ++totalRefs_;
    SampledSample result;

    if (config_.mode == SamplingMode::None) {
        result.admitted = true;
        result.sample = inner_->access(line);
        ++sampledRefs_;
        return result;
    }

    std::uint64_t hash = lineHash(line);
    if (hash >= threshold_)
        return result;

    // Rate at admission time: distances measured among sampled lines
    // undercount by exactly this factor in expectation (each sampled
    // intervening line stands in for 1/rate real ones).
    double rate = rateForThreshold(threshold_);
    bool first_touch = config_.mode == SamplingMode::FixedSize &&
                       !inner_->tracks(line);

    result.admitted = true;
    result.sample = inner_->access(line);
    ++sampledRefs_;
    if (result.sample.kind == memsys::RefClass::Finite && rate < 1.0) {
        result.sample.distance = static_cast<std::uint64_t>(std::llround(
            static_cast<double>(result.sample.distance) / rate));
    }

    if (first_touch) {
        victims_.emplace(hash, line);
        shrinkToBudget();
    }
    return result;
}

void
SampledStackDistanceProfiler::shrinkToBudget()
{
    while (victims_.size() > config_.maxLines) {
        auto [hash, line] = victims_.top();
        victims_.pop();
        // The evicted hash becomes the new exclusive threshold, so the
        // victim (and everything hashing at or above it) is rejected
        // from now on; tied hashes are drained immediately to keep the
        // heap consistent with the filter.
        threshold_ = hash;
        inner_->evict(line);
        while (!victims_.empty() && victims_.top().first >= threshold_) {
            inner_->evict(victims_.top().second);
            victims_.pop();
        }
    }
}

bool
SampledStackDistanceProfiler::invalidate(Addr line)
{
    if (!wouldAdmit(line))
        return false;
    return inner_->invalidate(line);
}

std::uint64_t
SampledStackDistanceProfiler::estimatedTouchedLines() const
{
    double rate = effectiveRate();
    if (rate >= 1.0)
        return inner_->touchedLines();
    return static_cast<std::uint64_t>(std::llround(
        static_cast<double>(inner_->touchedLines()) / rate));
}

std::uint64_t
SampledStackDistanceProfiler::memoryBytes() const
{
    // The eviction heap stores one 16-byte pair per tracked line.
    return inner_->memoryBytes() +
           static_cast<std::uint64_t>(victims_.size()) *
               sizeof(std::pair<std::uint64_t, Addr>);
}

void
SampledStackDistanceProfiler::clear()
{
    inner_->clear();
    victims_ = {};
    totalRefs_ = 0;
    sampledRefs_ = 0;
    threshold_ = config_.mode == SamplingMode::FixedRate
                     ? thresholdForRate(config_.rate)
                     : kAdmitAll;
}

} // namespace wsg::approx
