/**
 * @file
 * Spatially-hashed sampling configuration — the admission policy of the
 * approximate miss-rate-curve subsystem.
 *
 * The exact instrument (one StackDistanceProfiler per processor) costs
 * O(log n) time and one live stack entry per distinct line, which is the
 * bottleneck between the laptop-scale studies and the paper's
 * prototypical 1 GB / 1024-PE problems. SHARDS-style spatial sampling
 * (Waldspurger et al.; surveyed by Byrne et al.) recovers the full
 * miss-rate-versus-cache-size curve from a small fraction of the
 * references: a line is sampled iff hash(lineAddr) < rate * 2^64, so
 * *every* reference to a sampled line is kept (reuse pairs survive
 * intact) and measured stack distances scale by 1/rate.
 *
 * Because admission depends only on the line address — no RNG state, no
 * reference order — sampling is deterministic: the same trace yields the
 * same sampled profile at any worker count, preserving the study
 * runner's byte-identical parallel == serial guarantee.
 */

#ifndef WSG_APPROX_SAMPLING_HH
#define WSG_APPROX_SAMPLING_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "memsys/profiler.hh"
#include "trace/memref.hh"

namespace wsg::approx
{

using trace::Addr;

/** Which admission policy a sampled profiler runs. */
enum class SamplingMode : std::uint8_t
{
    /** Exact profiling; every reference is admitted. */
    None,
    /** Admit iff hash(line) < rate * 2^64; rate is fixed for the run. */
    FixedRate,
    /**
     * Bound the number of distinct tracked lines: start at rate 1 and
     * adaptively lower the admission threshold, evicting the
     * above-threshold lines, whenever the budget is exceeded. Memory is
     * O(maxLines) regardless of footprint; the effective rate is
     * whatever the budget affords.
     */
    FixedSize,
};

/** Sampling policy parameters, carried from CLI through sim to stats. */
struct SamplingConfig
{
    SamplingMode mode = SamplingMode::None;
    /** FixedRate: admission probability in (0, 1]. */
    double rate = 0.01;
    /** FixedSize: distinct-line budget per profiler (> 0). */
    std::uint64_t maxLines = 8192;
    /**
     * XORed into the line address before hashing, selecting an
     * independent deterministic draw of sampled lines. The default (0)
     * is the canonical draw; distinct salts give uncorrelated samples
     * of the same trace, which is how the accuracy harness measures
     * single-draw variance without any RNG.
     */
    std::uint64_t hashSalt = 0;

    bool enabled() const { return mode != SamplingMode::None; }

    /** @throws std::invalid_argument on out-of-range parameters. */
    void
    validate() const
    {
        if (mode == SamplingMode::FixedRate &&
            !(rate > 0.0 && rate <= 1.0)) {
            throw std::invalid_argument(
                "SamplingConfig: fixed-rate sampling needs rate in "
                "(0, 1], got " +
                std::to_string(rate));
        }
        if (mode == SamplingMode::FixedSize && maxLines == 0) {
            throw std::invalid_argument(
                "SamplingConfig: fixed-size sampling needs a non-zero "
                "line budget");
        }
    }
};

/** Human-readable mode name (also the JSON spelling). */
inline const char *
samplingModeName(SamplingMode mode)
{
    switch (mode) {
      case SamplingMode::FixedRate: return "fixed-rate";
      case SamplingMode::FixedSize: return "fixed-size";
      case SamplingMode::None: break;
    }
    return "none";
}

/**
 * 64-bit finalizing mixer (splitmix64). Line numbers are sequential and
 * low-entropy; the mixer spreads them uniformly over [0, 2^64) so the
 * "hash < rate * 2^64" test samples an unbiased rate-fraction of lines.
 */
constexpr std::uint64_t
mixAddr(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Admission threshold: admit iff mixAddr(line) < threshold. */
constexpr std::uint64_t kAdmitAll = ~std::uint64_t{0};

/** Threshold for a target rate (rate >= 1 admits everything). */
inline std::uint64_t
thresholdForRate(double rate)
{
    if (rate >= 1.0)
        return kAdmitAll;
    if (rate <= 0.0)
        return 0;
    // 2^64 as a double is exact; the product truncates toward zero.
    return static_cast<std::uint64_t>(rate * 18446744073709551616.0);
}

/** Effective admission rate of a threshold. */
inline double
rateForThreshold(std::uint64_t threshold)
{
    if (threshold == kAdmitAll)
        return 1.0;
    return static_cast<double>(threshold) / 18446744073709551616.0;
}

/**
 * Run-level sampling observability, reported per study and serialized
 * into the wsg-study-report-v3 artifact. In exact mode the counters
 * still describe the profilers (sampledRefs == totalRefs, rate 1), so
 * the same record doubles as the exact run's profiler-cost report.
 */
struct SamplingDiagnostics
{
    SamplingConfig config;
    /** Which miss-rate-curve construction the profilers ran. */
    memsys::ProfilerKind profiler = memsys::ProfilerKind::TreeMattson;
    /** Final admission rate, reference-weighted across processors
     *  (fixed-rate: the configured rate; fixed-size: whatever the
     *  budget converged to). */
    double effectiveRate = 1.0;
    /** References delivered to the profilers (warm-up included — the
     *  profilers see every reference to keep their state correct). */
    std::uint64_t totalRefs = 0;
    /** References the admission filter let through. */
    std::uint64_t sampledRefs = 0;
    /** Distinct lines currently tracked across all profilers. */
    std::uint64_t sampledLines = 0;
    /** Approximate resident bytes of all profilers (stack entries +
     *  Fenwick trees) — the memory the sampling exists to bound. */
    std::uint64_t profilerBytes = 0;
};

} // namespace wsg::approx

#endif // WSG_APPROX_SAMPLING_HH
