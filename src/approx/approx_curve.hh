/**
 * @file
 * ApproxCurve — turning sampled miss counts into estimated full-trace
 * miss-rate curves, plus the exact-vs-sampled accuracy harness.
 *
 * Estimator (SHARDS): with spatial rate R, the sampled stream contains
 * an expected R-fraction of the references and the recorded distances
 * are already rescaled to full-trace units, so
 *
 *   miss_rate(C)  ~=  sampled_misses(C) / expected_sampled_refs
 *   miss_count(C) ~=  miss_rate(C) * total_refs
 *
 * where expected_sampled_refs is total_refs * rate — the *expected*
 * admitted count, not the actual one (see SampledCounts) — at the
 * final rate for fixed-size sampling (the SHARDS_adj correction: early
 * references admitted at higher-than-final rates would otherwise
 * inflate the denominator).
 *
 * In SamplingMode::None every formula degenerates to the exact
 * arithmetic — the same expressions, bit for bit — so the simulator can
 * route both modes through one code path without perturbing the golden
 * exact curves.
 */

#ifndef WSG_APPROX_APPROX_CURVE_HH
#define WSG_APPROX_APPROX_CURVE_HH

#include <cstdint>
#include <vector>

#include "approx/sampling.hh"
#include "stats/curve.hh"
#include "stats/histogram.hh"
#include "stats/knee.hh"

namespace wsg::approx
{

/**
 * Aggregated sampled counters for one reference kind (reads or
 * writes): the inputs of the estimator.
 */
struct SampledCounts
{
    /** Scaled-distance histogram of admitted Finite references. */
    const stats::Histogram *distances = nullptr;
    /** Admitted cold / coherence classifications. */
    std::uint64_t cold = 0;
    std::uint64_t coherence = 0;
    /** References the filter admitted (this kind). */
    std::uint64_t sampledRefs = 0;
    /** Exact count of measured references (this kind). */
    std::uint64_t totalRefs = 0;
    /**
     * Denominator of the rate estimate: the *expected* sampled
     * reference count, totalRefs * rate (per processor, at the final
     * rate for fixed-size), or totalRefs when exact. Sampled miss
     * counts scale with the fraction of lines admitted, so dividing by
     * the expectation — rather than the actual sampledRefs, whose
     * deviation is reference-weighted and correlated across the whole
     * curve — is the unbiased SHARDS_adj-style estimator.
     */
    double expectedSampledRefs = 0.0;
};

/**
 * The scaler: estimated miss counts/rates at any cache capacity, with
 * the run's sampling diagnostics attached for reporting.
 */
class ApproxCurve
{
  public:
    explicit ApproxCurve(const SamplingDiagnostics &diagnostics)
        : diagnostics_(diagnostics)
    {}

    const SamplingDiagnostics &diagnostics() const { return diagnostics_; }
    bool sampled() const { return diagnostics_.config.enabled(); }

    /** Sampled misses at @p capacity_lines (raw, sampled units). */
    static std::uint64_t sampledMisses(const SampledCounts &counts,
                                       std::uint64_t capacity_lines,
                                       bool include_cold);

    /**
     * Estimated full-trace miss rate at @p capacity_lines: sampled
     * misses over expected sampled references. Exact mode divides the
     * exact counts — identical arithmetic to the unsampled path.
     * @return 0 when the run produced no (sampled) references.
     */
    double missRate(const SampledCounts &counts,
                    std::uint64_t capacity_lines,
                    bool include_cold) const;

    /** Estimated full-trace miss *count*: missRate * totalRefs. Exact
     *  mode returns the exact count. */
    double missCount(const SampledCounts &counts,
                     std::uint64_t capacity_lines,
                     bool include_cold) const;

    /**
     * missRate with a caller-computed sampled-miss numerator. The AET
     * construction maps capacity to a *per-processor* histogram
     * threshold (each processor's reuse-time model is its own), so its
     * miss counts cannot be read off a merged histogram the way the
     * Mattson kinds' can; the simulator sums per-processor counts and
     * feeds the total through here to share the denominator arithmetic.
     */
    double missRateFromMisses(const SampledCounts &counts,
                              std::uint64_t sampled_misses) const;

    /** missCount for a caller-computed sampled-miss numerator. */
    double missCountFromMisses(const SampledCounts &counts,
                               std::uint64_t sampled_misses) const;

    /**
     * Scale an arbitrary admitted-reference counter @p raw to a
     * full-trace estimate: raw * totalRefs / expectedSampledRefs — the
     * same SHARDS_adj denominator as missCount, so per-category counts
     * scaled this way still sum to the scaled total. Exact mode
     * multiplies by exactly 1.0, keeping integer counts integer. This
     * is how the miss-classification breakdown (cold / capacity /
     * true-sharing / false-sharing) composes with sampling.
     */
    double scaledCount(const SampledCounts &counts,
                       std::uint64_t raw) const;

  private:
    SamplingDiagnostics diagnostics_;
};

// ---------------------------------------------------------------------
// Accuracy harness: exact-vs-sampled curve comparison.
// ---------------------------------------------------------------------

/** How far a sampled knee sits from its exact counterpart. */
struct KneeMatch
{
    int level = 0;
    /**
     * Knee locations measured at the half-depth crossing of each
     * curve's drop — the x where the miss rate falls through
     * (before + after) / 2, log-interpolated. The detector's own
     * sizeBytes marks where a drop *ends*, which under sampling smear
     * shifts by whole grid steps while the transition midpoint barely
     * moves; the half-depth crossing (FWHM-style) is the robust
     * location of the transition itself.
     */
    double exactBytes = 0.0;
    double approxBytes = 0.0;
    /** |log2(approx/exact)| * pointsPerOctave — displacement measured
     *  in sweep points, the natural unit of the study resolution. */
    double displacementSteps = 0.0;
};

/** Outcome of comparing a sampled study against the exact one. */
struct CurveComparison
{
    /** Mean / max absolute y-error over the exact curve's x-grid. */
    double meanAbsError = 0.0;
    double maxAbsError = 0.0;
    /**
     * Mean / max absolute y-error over the grid points where the exact
     * curve is *flat*: off the detected knees' half-depth faces and off
     * any segment dropping faster than the 0.01 flatness tolerance
     * (undetected sub-knee steps smear under approximation exactly like
     * detected ones), all dilated by one sweep step. On a transition a
     * small horizontal displacement — already measured by
     * KneeMatch::displacementSteps — shows up as a huge vertical error,
     * so the full-grid MAE conflates the two axes; the plateau error is
     * the meaningful vertical-accuracy number. Equal to the full-grid
     * values when the study has no knees.
     */
    double plateauMeanAbsError = 0.0;
    double plateauMaxAbsError = 0.0;
    /** Per-level knee displacement (paired by level order). */
    std::vector<KneeMatch> knees;
    /** Knee-count disagreement (|#exact - #approx|). */
    std::size_t kneeCountDiff = 0;
    /** Largest displacement across matched knees (0 when none). */
    double maxKneeDisplacementSteps() const;
};

/**
 * Pointwise absolute error of @p approx against @p exact, evaluated at
 * the exact curve's x samples with step semantics (valueAtOrBelow —
 * the lookup rule of miss-rate curves).
 */
CurveComparison compareCurves(const stats::Curve &exact,
                              const stats::Curve &approx);

/**
 * Full comparison: pointwise error plus knee displacement, pairing
 * working sets in level order and expressing displacement in sweep
 * points at @p points_per_octave resolution.
 */
CurveComparison
compareStudies(const stats::Curve &exact_curve,
               const std::vector<stats::WorkingSet> &exact_knees,
               const stats::Curve &approx_curve,
               const std::vector<stats::WorkingSet> &approx_knees,
               int points_per_octave);

/**
 * Pointwise mean of curves sharing one x-grid — the variance-reduction
 * step for multi-draw sampling: run the same study under several
 * SamplingConfig::hashSalt values (independent deterministic draws)
 * and average the estimated curves. Single-draw level noise scales as
 * 1/sqrt(sampled lines), which on small studies dominates the error;
 * averaging K draws cuts it by sqrt(K) while each run keeps the
 * one-draw memory footprint.
 *
 * @throws std::invalid_argument when @p curves is empty or the x-grids
 *         disagree.
 */
stats::Curve averageCurves(const std::vector<stats::Curve> &curves,
                           const std::string &name = "mean");

} // namespace wsg::approx

#endif // WSG_APPROX_APPROX_CURVE_HH
