#include "approx/aet.hh"

namespace wsg::approx
{

memsys::DistanceSample
AetProfiler::accessOne(memsys::Addr line)
{
    ++now_;
    memsys::DistanceSample sample;
    auto it = last_.find(line);
    if (it == last_.end()) {
        sample.kind = memsys::RefClass::Cold;
        ++infinite_;
        last_.emplace(line, static_cast<std::int64_t>(now_));
        if (++live_ > peakLive_)
            peakLive_ = live_;
    } else if (it->second == kInvalidated) {
        sample.kind = memsys::RefClass::Coherence;
        ++infinite_;
        it->second = static_cast<std::int64_t>(now_);
        if (++live_ > peakLive_)
            peakLive_ = live_;
    } else {
        sample.kind = memsys::RefClass::Finite;
        std::uint64_t t =
            now_ - static_cast<std::uint64_t>(it->second);
        sample.distance = codeFor(t);
        ++finite_[sample.distance];
        ++finiteTotal_;
        it->second = static_cast<std::int64_t>(now_);
    }
    return sample;
}

memsys::DistanceSample
AetProfiler::access(memsys::Addr line)
{
    return accessOne(line);
}

void
AetProfiler::accessBatch(const memsys::Addr *lines, std::size_t n,
                         memsys::DistanceSample *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = accessOne(lines[i]);
}

bool
AetProfiler::invalidate(memsys::Addr line)
{
    auto it = last_.find(line);
    if (it == last_.end() || it->second == kInvalidated)
        return false;
    it->second = kInvalidated;
    --live_;
    return true;
}

bool
AetProfiler::evict(memsys::Addr line)
{
    auto it = last_.find(line);
    if (it == last_.end())
        return false;
    if (it->second != kInvalidated)
        --live_;
    last_.erase(it);
    return true;
}

std::uint64_t
AetProfiler::capacityToThreshold(std::uint64_t capacity_lines) const
{
    // Threshold 0 counts every recorded sample: a zero-line cache
    // misses on everything.
    if (capacity_lines == 0)
        return 0;

    // Exact clamp: a reference at stack distance d had d more-recent
    // live lines above it, so every finite distance is < peakLive_.
    // Once the cache covers the peak footprint nothing finite misses,
    // however heavy the reuse-*time* tail is — this is where the pure
    // model overshoots (long absolute gaps with few distinct lines in
    // between, e.g. phase-structured FFT transposes).
    if (capacity_lines >= peakLive_)
        return kMaxCode + 1;

    std::uint64_t total = finiteTotal_ + infinite_;
    if (total == 0)
        return kMaxCode + 1;

    // Walk the reuse-time buckets accumulating integral P(t) dt until
    // it reaches the capacity. remaining == references with reuse time
    // beyond the current bucket (infinite reuses never decay), so
    // remaining / total is the survival function sampled at the bucket.
    //
    // The integral starts at t = 1, not t = 0: distances here follow
    // the exclusive Mattson convention (a re-reference with nothing in
    // between has distance 0 and hits in any non-empty cache), so the
    // slot the line itself occupies is not part of the capacity budget.
    // With that convention a uniform loop over W lines crosses at
    // exactly C == W - 1 (all miss) versus C == W (all hit), matching
    // exact LRU.
    const double n = static_cast<double>(total);
    const double cap = static_cast<double>(capacity_lines);
    std::uint64_t remaining = total;
    double integral = 0.0;
    for (std::uint64_t b = 1; b <= kMaxCode; ++b) {
        remaining -= finite_[b];
        double lo = static_cast<double>(bucketLo(b));
        double hi = b < kMaxCode
                        ? static_cast<double>(bucketLo(b + 1))
                        : 18446744073709551616.0; // 2^64
        integral += static_cast<double>(remaining) / n * (hi - lo);
        // Crossing inside bucket b: t* lands in [lo(b), lo(b+1)), and a
        // reference misses iff its reuse time exceeds t* — code > b.
        if (integral >= cap)
            return b + 1;
    }
    return kMaxCode + 1;
}

void
AetProfiler::clear()
{
    last_.clear();
    finite_.assign(kMaxCode + 1, 0);
    infinite_ = 0;
    finiteTotal_ = 0;
    now_ = 0;
    live_ = 0;
    peakLive_ = 0;
}

std::uint64_t
AetProfiler::memoryBytes() const
{
    constexpr std::uint64_t kMapNodeBytes = 48;
    return static_cast<std::uint64_t>(last_.size()) * kMapNodeBytes +
           static_cast<std::uint64_t>(finite_.capacity()) *
               sizeof(finite_[0]) +
           sizeof(*this);
}

} // namespace wsg::approx
