/**
 * @file
 * AET (average eviction time) approximate profiler (ProfilerKind::Aet).
 *
 * Where the Mattson profilers pay O(log n) per reference to measure the
 * *stack distance* (distinct lines since last touch), AET records only
 * the *reuse time* (total references since last touch) — one hash-map
 * probe, O(1), no stack structure at all. The miss-rate curve is then
 * recovered from the reuse-time distribution by the AET model (Hu et
 * al., ATC'16): in an LRU cache of C lines, a line sinks one stack
 * position whenever a reference arrives whose reuse time exceeds the
 * line's current age, so the expected eviction age t*(C) solves
 *
 *     integral_0^t* P(t) dt = C,    P(t) = Pr[reuse time > t]
 *
 * and a reference misses iff its own reuse time exceeds t*(C).
 *
 * Through the common Profiler contract this is just another
 * capacityToThreshold: samples carry quantized reuse-time codes instead
 * of stack distances, and capacityToThreshold(C) walks the recorded
 * distribution to the integral crossing and returns the first code that
 * counts as a miss. Consumers still evaluate
 * hist.countAtLeast(capacityToThreshold(C)) — nothing downstream knows
 * the construction changed.
 *
 * Quantization: reuse times below 4096 keep exact codes (code == t);
 * larger times get a 6-bit-mantissa floating-point code (64 buckets per
 * octave), bounding relative bucket width by 1/64 and the whole code
 * space by ~7.4k — the distribution stays a small dense array no matter
 * how long the trace runs.
 *
 * Classification (Cold / Coherence / Finite) reuses the exact
 * profilers' tombstone scheme verbatim, so the coherence and cold floors
 * of the curve — the paper's "inherent communication" — remain exact;
 * only the finite-distance part of the curve is approximated. Both
 * classes enter the model as infinite reuse times.
 *
 * The model is deterministic (counts only, no RNG, no clock) and
 * composes with the runner's byte-identical parallel == serial
 * guarantee. It does NOT compose with SHARDS spatial sampling: reuse
 * times measured on a sampled sub-trace are not rescalable the way
 * stack distances are, so SampledStackDistanceProfiler rejects the
 * combination.
 */

#ifndef WSG_APPROX_AET_HH
#define WSG_APPROX_AET_HH

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "memsys/profiler.hh"

namespace wsg::approx
{

/** O(1)-per-reference approximate profiler via reuse-time modeling. */
class AetProfiler : public memsys::Profiler
{
  public:
    /** Reuse times below this are coded exactly (code == time). */
    static constexpr std::uint64_t kExactLimit = 4096;
    /** log2(kExactLimit): first quantized octave. */
    static constexpr unsigned kExactBits = 12;
    /** Mantissa bits kept per quantized octave (64 buckets/octave). */
    static constexpr unsigned kMantBits = 6;
    /** Largest code: octave 63, full mantissa. */
    static constexpr std::uint64_t kMaxCode =
        kExactLimit + (63 - kExactBits) * (1ULL << kMantBits) +
        ((1ULL << kMantBits) - 1);

    /** Quantized code of reuse time @p t (>= 1). */
    static std::uint64_t
    codeFor(std::uint64_t t)
    {
        if (t < kExactLimit)
            return t;
        unsigned e = static_cast<unsigned>(std::bit_width(t)) - 1;
        std::uint64_t mant = (t >> (e - kMantBits)) &
                             ((1ULL << kMantBits) - 1);
        return kExactLimit + (e - kExactBits) * (1ULL << kMantBits) +
               mant;
    }

    /** Smallest reuse time carrying code @p code (its bucket floor). */
    static std::uint64_t
    bucketLo(std::uint64_t code)
    {
        if (code < kExactLimit)
            return code;
        std::uint64_t q = code - kExactLimit;
        unsigned e = kExactBits +
                     static_cast<unsigned>(q >> kMantBits);
        std::uint64_t mant = q & ((1ULL << kMantBits) - 1);
        return (1ULL << e) | (mant << (e - kMantBits));
    }

    AetProfiler() : finite_(kMaxCode + 1, 0) {}

    memsys::ProfilerKind
    kind() const override
    {
        return memsys::ProfilerKind::Aet;
    }

    memsys::DistanceSample access(memsys::Addr line) override;

    void accessBatch(const memsys::Addr *lines, std::size_t n,
                     memsys::DistanceSample *out) override;

    bool invalidate(memsys::Addr line) override;

    bool evict(memsys::Addr line) override;

    bool
    tracks(memsys::Addr line) const override
    {
        return last_.count(line) != 0;
    }

    std::uint64_t liveLines() const override { return live_; }

    std::uint64_t
    touchedLines() const override
    {
        return static_cast<std::uint64_t>(last_.size());
    }

    /**
     * The AET transform: the first reuse-time code classified as a miss
     * in a cache of @p capacity_lines, i.e. t*(C) + 1 at the integral
     * crossing, or kMaxCode + 1 when the crossing is never reached (no
     * finite reuse misses). The model integrates over *all* ingested
     * references, warm-up included — the survival function P(t) is a
     * property of the workload, not of the measurement window.
     */
    std::uint64_t
    capacityToThreshold(std::uint64_t capacity_lines) const override;

    void clear() override;

    std::uint64_t memoryBytes() const override;

  private:
    static constexpr std::int64_t kInvalidated = -1;

    memsys::DistanceSample accessOne(memsys::Addr line);

    /** addr -> timestamp of latest access, or kInvalidated tombstone. */
    std::unordered_map<memsys::Addr, std::int64_t> last_;
    /** finite_[c]: ingested references with finite reuse code c. */
    std::vector<std::uint64_t> finite_;
    /** Ingested references with infinite reuse (Cold + Coherence). */
    std::uint64_t infinite_ = 0;
    /** Sum over finite_ — kept incrementally. */
    std::uint64_t finiteTotal_ = 0;
    /** References ingested (monotone; one per access()). */
    std::uint64_t now_ = 0;
    /** Lines currently live (non-tombstoned). */
    std::uint64_t live_ = 0;
    /** High-water mark of live_. A stack distance of d needs d deeper
     *  live lines at the moment of access, so no distance can reach
     *  peakLive_ — an exact bound the model is clamped with. */
    std::uint64_t peakLive_ = 0;
};

} // namespace wsg::approx

#endif // WSG_APPROX_AET_HH
