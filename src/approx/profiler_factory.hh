/**
 * @file
 * Construction of concrete Profiler instances from a ProfilerKind.
 *
 * Lives in approx rather than memsys because the AET construction is an
 * approximation-layer concern; memsys only defines the interface and
 * the two exact Mattson implementations.
 */

#ifndef WSG_APPROX_PROFILER_FACTORY_HH
#define WSG_APPROX_PROFILER_FACTORY_HH

#include <memory>

#include "memsys/profiler.hh"

namespace wsg::approx
{

/** Build a fresh profiler of the requested construction. */
std::unique_ptr<memsys::Profiler> makeProfiler(memsys::ProfilerKind kind);

} // namespace wsg::approx

#endif // WSG_APPROX_PROFILER_FACTORY_HH
